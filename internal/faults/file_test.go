package faults

import (
	"bytes"
	"errors"
	"syscall"
	"testing"
)

// memFile is an in-memory WritableFile recording what reached "disk".
type memFile struct {
	buf    bytes.Buffer
	syncs  int
	closed bool
}

func (m *memFile) Write(p []byte) (int, error) { return m.buf.Write(p) }
func (m *memFile) Sync() error                 { m.syncs++; return nil }
func (m *memFile) Close() error                { m.closed = true; return nil }

func TestFileInjectorPassThrough(t *testing.T) {
	mem := &memFile{}
	inj := NewFile(FileSpec{})
	f := inj.Wrap(mem)
	n, err := f.Write([]byte("hello"))
	if n != 5 || err != nil {
		t.Fatalf("Write = (%d, %v), want (5, nil)", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil || !mem.closed {
		t.Fatalf("Close not forwarded: err=%v closed=%v", err, mem.closed)
	}
	if mem.buf.String() != "hello" || mem.syncs != 1 {
		t.Fatalf("underlying file state: %q, %d syncs", mem.buf.String(), mem.syncs)
	}
	st := inj.Stats()
	if st.Writes != 1 || st.WriteErrs+st.ShortWrites+st.SyncErrs != 0 {
		t.Fatalf("pass-through injector stats: %+v", st)
	}
	if (FileSpec{}).Enabled() {
		t.Fatal("zero spec reports Enabled")
	}
}

func TestFileInjectorFailAfterBytes(t *testing.T) {
	mem := &memFile{}
	inj := NewFile(FileSpec{FailAfterBytes: 10})
	f := inj.Wrap(mem)
	if _, err := f.Write(make([]byte, 6)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 6)); err != nil {
		// 6 < 10, so the second write still lands (cliff checks bytes
		// already written, like a disk with 10 free blocks would).
		t.Fatalf("write below cliff failed: %v", err)
	}
	n, err := f.Write([]byte("x"))
	if n != 0 || !errors.Is(err, syscall.ENOSPC) || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-cliff write = (%d, %v), want injected ENOSPC", n, err)
	}
	if mem.buf.Len() != 12 {
		t.Fatalf("underlying bytes = %d, want 12", mem.buf.Len())
	}
	if st := inj.Stats(); st.WriteErrs != 1 {
		t.Fatalf("stats: %+v, want 1 write err", st)
	}
}

func TestFileInjectorShortWrite(t *testing.T) {
	mem := &memFile{}
	inj := NewFile(FileSpec{Seed: 3, ShortRate: 1})
	f := inj.Wrap(mem)
	p := []byte("0123456789")
	n, err := f.Write(p)
	if !errors.Is(err, syscall.EIO) || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write err = %v, want injected EIO", err)
	}
	if n >= len(p) {
		t.Fatalf("short write wrote %d of %d — not a strict prefix", n, len(p))
	}
	if mem.buf.Len() != n || !bytes.Equal(mem.buf.Bytes(), p[:n]) {
		t.Fatalf("disk holds %q, want prefix %q", mem.buf.Bytes(), p[:n])
	}
	if st := inj.Stats(); st.ShortWrites != 1 {
		t.Fatalf("stats: %+v, want 1 short write", st)
	}
}

func TestFileInjectorSyncErr(t *testing.T) {
	mem := &memFile{}
	inj := NewFile(FileSpec{Seed: 5, SyncErrRate: 1})
	f := inj.Wrap(mem)
	err := f.Sync()
	if !errors.Is(err, syscall.EIO) || !errors.Is(err, ErrInjected) {
		t.Fatalf("sync err = %v, want injected EIO", err)
	}
	// Best-effort underlying sync still ran.
	if mem.syncs != 1 {
		t.Fatalf("underlying syncs = %d, want 1", mem.syncs)
	}
	if st := inj.Stats(); st.SyncErrs != 1 {
		t.Fatalf("stats: %+v, want 1 sync err", st)
	}
}

func TestFileInjectorDeterministicSchedule(t *testing.T) {
	run := func() ([]int, []bool) {
		inj := NewFile(FileSpec{Seed: 42, WriteErrRate: 0.3, ShortRate: 0.3, SyncErrRate: 0.5})
		f := inj.Wrap(&memFile{})
		ns := make([]int, 0, 32)
		syncErrs := make([]bool, 0, 8)
		for i := 0; i < 32; i++ {
			n, _ := f.Write([]byte("abcdefgh"))
			ns = append(ns, n)
			if i%4 == 0 {
				syncErrs = append(syncErrs, f.Sync() != nil)
			}
		}
		return ns, syncErrs
	}
	n1, s1 := run()
	n2, s2 := run()
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatalf("write schedule diverged at %d: %v vs %v", i, n1, n2)
		}
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("sync schedule diverged at %d: %v vs %v", i, s1, s2)
		}
	}
	// Sanity: with these rates, 32 writes should include faults.
	faulted := false
	for _, n := range n1 {
		if n != 8 {
			faulted = true
		}
	}
	if !faulted {
		t.Fatal("seed 42 produced no write faults in 32 writes — schedule dead?")
	}
}

func TestFileInjectorSharedAcrossFiles(t *testing.T) {
	// One injector wrapping successive files (rotated segments) keeps a
	// single byte budget.
	inj := NewFile(FileSpec{FailAfterBytes: 8})
	f1 := inj.Wrap(&memFile{})
	if _, err := f1.Write(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	f2 := inj.Wrap(&memFile{})
	if _, err := f2.Write([]byte("y")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("second file ignored shared byte budget: %v", err)
	}
}
