package cycles

import (
	"errors"
	"fmt"
	"math"

	"arbloop/internal/graph"
)

// BellmanFordMoore searches the directed multigraph for a negative cycle
// under the weights w(u→v) = −log(γ·r_v/r_u), i.e. an arbitrage loop
// (Zhou et al., S&P'21 use this detector). It runs the Bellman–Ford–Moore
// relaxation from a virtual source connected to every node (dist ≡ 0), and
// on detecting a relaxable edge after |V|−1 passes walks the predecessor
// chain to extract one cycle.
//
// The returned loop is anchored at its smallest node index and validated.
// When no arbitrage loop exists it returns ErrNoNegCycle.
func BellmanFordMoore(g *graph.Graph) (Directed, error) {
	n := g.NumNodes()
	if n == 0 {
		return Directed{}, fmt.Errorf("%w: empty graph", ErrNoNegCycle)
	}

	type arc struct {
		from, to, pool int
		w              float64
	}
	arcs := make([]arc, 0, 2*g.NumEdges())
	for _, e := range g.Edges() {
		pool := g.Pool(e.PoolIndex)
		pu, err := pool.SpotPrice(g.Node(e.U))
		if err != nil {
			return Directed{}, err
		}
		pv, err := pool.SpotPrice(g.Node(e.V))
		if err != nil {
			return Directed{}, err
		}
		arcs = append(arcs,
			arc{from: e.U, to: e.V, pool: e.PoolIndex, w: -math.Log(pu)},
			arc{from: e.V, to: e.U, pool: e.PoolIndex, w: -math.Log(pv)},
		)
	}

	dist := make([]float64, n) // virtual source: all zero
	predNode := make([]int, n)
	predPool := make([]int, n)
	for i := range predNode {
		predNode[i] = -1
		predPool[i] = -1
	}

	relaxAll := func() (changedNode int) {
		changedNode = -1
		for _, a := range arcs {
			if nd := dist[a.from] + a.w; nd < dist[a.to]-1e-15 {
				dist[a.to] = nd
				predNode[a.to] = a.from
				predPool[a.to] = a.pool
				changedNode = a.to
			}
		}
		return changedNode
	}

	for pass := 0; pass < n-1; pass++ {
		if relaxAll() == -1 {
			return Directed{}, ErrNoNegCycle
		}
	}
	witness := relaxAll()
	if witness == -1 {
		return Directed{}, ErrNoNegCycle
	}

	// The witness is reachable from a negative cycle; walking n predecessor
	// steps is guaranteed to land inside the cycle.
	v := witness
	for i := 0; i < n; i++ {
		v = predNode[v]
	}
	// Extract the cycle by following predecessors until v repeats.
	var revNodes, revPools []int
	u := v
	for {
		revNodes = append(revNodes, u)
		revPools = append(revPools, predPool[u])
		u = predNode[u]
		if u == v {
			break
		}
	}
	// revNodes is in reverse traversal order (each node preceded by its
	// predecessor); reverse to get the forward loop.
	k := len(revNodes)
	nodes := make([]int, k)
	pools := make([]int, k)
	for i := 0; i < k; i++ {
		nodes[i] = revNodes[k-1-i]
	}
	// predPool[revNodes[i]] is the pool from predNode into revNodes[i];
	// forward hop j goes nodes[j] → nodes[j+1] via the pool recorded at
	// nodes[j+1].
	for j := 0; j < k; j++ {
		pools[j] = predPool[nodes[(j+1)%k]]
	}

	// Anchor at the smallest node index.
	minAt := 0
	for i, nd := range nodes {
		if nd < nodes[minAt] {
			minAt = i
		}
	}
	d := Directed{Nodes: nodes, Pools: pools}.Rotate(minAt)
	if err := Validate(g, d); err != nil {
		return Directed{}, fmt.Errorf("cycles: extracted cycle invalid: %w", err)
	}
	return d, nil
}

// HasArbitrage reports whether any arbitrage loop exists, via a cheap
// Bellman–Ford–Moore feasibility run.
func HasArbitrage(g *graph.Graph) (bool, error) {
	_, err := BellmanFordMoore(g)
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, ErrNoNegCycle):
		return false, nil
	default:
		return false, err
	}
}
