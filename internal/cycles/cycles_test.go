package cycles

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"arbloop/internal/amm"
	"arbloop/internal/graph"
)

// paperGraph is the Section V example: X→Y→Z→X profitable.
func paperGraph(t *testing.T) *graph.Graph {
	t.Helper()
	pools := []*amm.Pool{
		amm.MustNewPool("p0", "X", "Y", 100, 200, 0.003),
		amm.MustNewPool("p1", "Y", "Z", 300, 200, 0.003),
		amm.MustNewPool("p2", "Z", "X", 200, 400, 0.003),
	}
	g, err := graph.Build(pools)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomGraph builds a connected random pool graph for property tests.
func randomGraph(tb testing.TB, rng *rand.Rand, nodes, pools int) *graph.Graph {
	tb.Helper()
	names := make([]string, nodes)
	for i := range names {
		names[i] = fmt.Sprintf("T%02d", i)
	}
	ps := make([]*amm.Pool, 0, pools)
	// Spanning chain keeps the graph connected.
	for i := 1; i < nodes && len(ps) < pools; i++ {
		ps = append(ps, amm.MustNewPool(
			fmt.Sprintf("p%d", len(ps)), names[i-1], names[i],
			rng.Float64()*1000+50, rng.Float64()*1000+50, 0.003))
	}
	for len(ps) < pools {
		a, b := rng.Intn(nodes), rng.Intn(nodes)
		if a == b {
			continue
		}
		ps = append(ps, amm.MustNewPool(
			fmt.Sprintf("p%d", len(ps)), names[a], names[b],
			rng.Float64()*1000+50, rng.Float64()*1000+50, 0.003))
	}
	g, err := graph.Build(ps)
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

func TestEnumerateTriangle(t *testing.T) {
	g := paperGraph(t)
	cs, err := Enumerate(g, 3, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 {
		t.Fatalf("triangle cycles = %d, want 1", len(cs))
	}
	c := cs[0]
	if c.Len() != 3 {
		t.Errorf("cycle length = %d, want 3", c.Len())
	}
	if err := Validate(g, c.Forward()); err != nil {
		t.Errorf("forward invalid: %v", err)
	}
	if err := Validate(g, c.Reverse()); err != nil {
		t.Errorf("reverse invalid: %v", err)
	}
}

func TestEnumerateBadBounds(t *testing.T) {
	g := paperGraph(t)
	if _, err := Enumerate(g, 1, 3, 0); err == nil {
		t.Error("minLen 1: want error")
	}
	if _, err := Enumerate(g, 4, 3, 0); err == nil {
		t.Error("maxLen < minLen: want error")
	}
}

func TestEnumerateLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(t, rng, 10, 25)
	_, err := Enumerate(g, 3, 5, 1)
	if err == nil {
		return // graph may genuinely have ≤ 1 cycle; re-check below
	}
	if !errors.Is(err, ErrTooMany) {
		t.Errorf("error = %v, want ErrTooMany", err)
	}
}

func TestEnumerateTwoPoolLoops(t *testing.T) {
	pools := []*amm.Pool{
		amm.MustNewPool("a", "X", "Y", 100, 200, 0.003),
		amm.MustNewPool("b", "X", "Y", 300, 100, 0.003),
	}
	g, err := graph.Build(pools)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := Enumerate(g, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 {
		t.Fatalf("2-pool cycles = %d, want 1", len(cs))
	}
	if cs[0].Pools[0] == cs[0].Pools[1] {
		t.Error("2-cycle reuses a pool")
	}
	// The reserve ratios differ wildly, so one orientation must be an
	// arbitrage loop.
	loops, err := ArbitrageLoops(g, cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 1 {
		t.Errorf("arbitrage loops = %d, want 1", len(loops))
	}
}

func TestEnumerateCompleteGraphCounts(t *testing.T) {
	// K4: C(4,3) = 4 triangles and 3 distinct 4-cycles.
	var pools []*amm.Pool
	names := []string{"A", "B", "C", "D"}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			pools = append(pools, amm.MustNewPool(
				fmt.Sprintf("p%d%d", i, j), names[i], names[j], 100, 100, 0.003))
		}
	}
	g, err := graph.Build(pools)
	if err != nil {
		t.Fatal(err)
	}
	c3, err := Enumerate(g, 3, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c3) != 4 {
		t.Errorf("K4 triangles = %d, want 4", len(c3))
	}
	c4, err := Enumerate(g, 4, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(c4) != 3 {
		t.Errorf("K4 4-cycles = %d, want 3", len(c4))
	}
	both, err := Enumerate(g, 3, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(both) != 7 {
		t.Errorf("K4 cycles length 3-4 = %d, want 7", len(both))
	}
}

func TestEnumerateCanonicalForm(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomGraph(t, rng, 9, 18)
	cs, err := Enumerate(g, 3, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, c := range cs {
		if err := Validate(g, c.Forward()); err != nil {
			t.Fatalf("invalid cycle %v: %v", c, err)
		}
		for _, n := range c.Nodes[1:] {
			if n <= c.Nodes[0] {
				t.Errorf("cycle %v: anchor not minimal", c)
			}
		}
		if c.Len() >= 3 && c.Nodes[1] > c.Nodes[c.Len()-1] {
			t.Errorf("cycle %v: reflection not canonical", c)
		}
		key := fmt.Sprint(c.Nodes, c.Pools)
		if seen[key] {
			t.Errorf("duplicate cycle %v", c)
		}
		seen[key] = true
	}
}

func TestRotatePreservesLoop(t *testing.T) {
	g := paperGraph(t)
	cs, err := Enumerate(g, 3, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := cs[0].Forward()
	for off := -3; off <= 6; off++ {
		r := d.Rotate(off)
		if err := Validate(g, r); err != nil {
			t.Errorf("Rotate(%d) invalid: %v", off, err)
		}
		p0, err := PriceProduct(g, d)
		if err != nil {
			t.Fatal(err)
		}
		p1, err := PriceProduct(g, r)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p0-p1) > 1e-12*p0 {
			t.Errorf("Rotate(%d) changes price product: %g vs %g", off, p0, p1)
		}
	}
}

func TestPriceProductPaperExample(t *testing.T) {
	g := paperGraph(t)
	cs, err := Enumerate(g, 3, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Fee-free product is (200/100)(200/300)(400/200) = 8/3; with fee γ³·8/3.
	want := math.Pow(0.997, 3) * 8.0 / 3.0
	var found bool
	for _, d := range []Directed{cs[0].Forward(), cs[0].Reverse()} {
		p, err := PriceProduct(g, d)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p-want) < 1e-12*want {
			found = true
		}
	}
	if !found {
		t.Errorf("no orientation has price product %g", want)
	}
}

func TestArbitrageLoopsAtMostOneOrientation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(t, rng, 8, 16)
		cs, err := Enumerate(g, 3, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cs {
			pf, err := PriceProduct(g, c.Forward())
			if err != nil {
				t.Fatal(err)
			}
			pr, err := PriceProduct(g, c.Reverse())
			if err != nil {
				t.Fatal(err)
			}
			if pf > 1 && pr > 1 {
				t.Fatalf("both orientations profitable: %g, %g", pf, pr)
			}
			// Products multiply to exactly γ^{2k}.
			wantProd := math.Pow(0.997, float64(2*c.Len()))
			if math.Abs(pf*pr-wantProd) > 1e-9*wantProd {
				t.Errorf("orientation product = %g, want γ^2k = %g", pf*pr, wantProd)
			}
		}
	}
}

func TestLogPriceSumSign(t *testing.T) {
	g := paperGraph(t)
	cs, _ := Enumerate(g, 3, 3, 0)
	loops, err := ArbitrageLoops(g, cs)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 1 {
		t.Fatalf("arbitrage loops = %d, want 1", len(loops))
	}
	s, err := LogPriceSum(g, loops[0])
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Errorf("log price sum = %g, want > 0", s)
	}
}

func TestValidateRejectsBadLoops(t *testing.T) {
	g := paperGraph(t)
	tests := []struct {
		name string
		d    Directed
	}{
		{name: "too short", d: Directed{Nodes: []int{0}, Pools: []int{0}}},
		{name: "mismatched lengths", d: Directed{Nodes: []int{0, 1, 2}, Pools: []int{0, 1}}},
		{name: "repeated node", d: Directed{Nodes: []int{0, 1, 1}, Pools: []int{0, 1, 2}}},
		{name: "repeated pool", d: Directed{Nodes: []int{0, 1, 2}, Pools: []int{0, 0, 2}}},
		{name: "wrong pool", d: Directed{Nodes: []int{0, 1, 2}, Pools: []int{1, 0, 2}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := Validate(g, tt.d); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestJohnsonMatchesEnumerate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(t, rng, 7, 14)
		for _, maxLen := range []int{3, 4, 7} {
			cs, err := Enumerate(g, 2, maxLen, 0)
			if err != nil {
				t.Fatal(err)
			}
			js, err := Johnson(g, maxLen, true, 0)
			if err != nil {
				t.Fatal(err)
			}
			// Every undirected cycle has exactly two directed traversals.
			if len(js) != 2*len(cs) {
				t.Fatalf("maxLen %d: Johnson found %d circuits, Enumerate %d cycles (want 2×)",
					maxLen, len(js), len(cs))
			}
			// Cross-check as sets of canonical keys.
			keys := make(map[string]int)
			for _, c := range cs {
				keys[directedKey(c.Forward())]++
				keys[directedKey(c.Reverse())]++
			}
			for _, d := range js {
				if err := Validate(g, d); err != nil {
					t.Fatalf("johnson circuit invalid: %v", err)
				}
				keys[directedKey(d)]--
			}
			for k, v := range keys {
				if v != 0 {
					t.Fatalf("circuit multiset mismatch at %s: %d", k, v)
				}
			}
		}
	}
}

func directedKey(d Directed) string {
	// Anchor at minimal node for comparison.
	minAt := 0
	for i, n := range d.Nodes {
		if n < d.Nodes[minAt] {
			minAt = i
		}
	}
	r := d.Rotate(minAt)
	return fmt.Sprint(r.Nodes, r.Pools)
}

func TestJohnsonSamePoolBacktrack(t *testing.T) {
	pools := []*amm.Pool{amm.MustNewPool("a", "X", "Y", 100, 200, 0.003)}
	g, err := graph.Build(pools)
	if err != nil {
		t.Fatal(err)
	}
	with, err := Johnson(g, 0, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(with) != 1 {
		t.Errorf("with backtrack circuits = %d, want 1 (X→Y→X)", len(with))
	}
	without, err := Johnson(g, 0, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(without) != 0 {
		t.Errorf("without backtrack circuits = %d, want 0", len(without))
	}
}

func TestJohnsonLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(t, rng, 8, 20)
	if _, err := Johnson(g, 0, true, 1); err == nil {
		t.Skip("graph happens to have ≤1 circuit")
	} else if !errors.Is(err, ErrTooMany) {
		t.Errorf("error = %v, want ErrTooMany", err)
	}
}

func TestJohnsonNegativeMaxLen(t *testing.T) {
	g := paperGraph(t)
	if _, err := Johnson(g, -1, true, 0); err == nil {
		t.Error("negative maxLen: want error")
	}
}

func TestBellmanFordMooreFindsPaperLoop(t *testing.T) {
	g := paperGraph(t)
	d, err := BellmanFordMoore(g)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PriceProduct(g, d)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 1 {
		t.Errorf("extracted loop price product = %g, want > 1", p)
	}
}

func TestBellmanFordMooreNoArbitrage(t *testing.T) {
	// Perfectly consistent reserve ratios + fees ⇒ no arbitrage.
	pools := []*amm.Pool{
		amm.MustNewPool("p0", "X", "Y", 100, 200, 0.003), // 1 X = 2 Y
		amm.MustNewPool("p1", "Y", "Z", 200, 100, 0.003), // 2 Y = 1 Z
		amm.MustNewPool("p2", "Z", "X", 100, 100, 0.003), // 1 Z = 1 X
	}
	g, err := graph.Build(pools)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BellmanFordMoore(g); !errors.Is(err, ErrNoNegCycle) {
		t.Errorf("error = %v, want ErrNoNegCycle", err)
	}
	has, err := HasArbitrage(g)
	if err != nil || has {
		t.Errorf("HasArbitrage = %v, %v; want false", has, err)
	}
}

func TestBellmanFordMooreEmptyGraph(t *testing.T) {
	g, err := graph.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BellmanFordMoore(g); !errors.Is(err, ErrNoNegCycle) {
		t.Errorf("empty graph error = %v, want ErrNoNegCycle", err)
	}
}

// Property: BFM agrees with brute-force enumeration on whether arbitrage
// exists (on graphs small enough to enumerate fully).
func TestBFMAgreesWithEnumerationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(t, rng, 6, 9)
		cs, err := Enumerate(g, 2, 6, 0)
		if err != nil {
			return false
		}
		loops, err := ArbitrageLoops(g, cs)
		if err != nil {
			return false
		}
		has, err := HasArbitrage(g)
		if err != nil {
			return false
		}
		return has == (len(loops) > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
