package cycles

import (
	"fmt"

	"arbloop/internal/graph"
)

// Johnson enumerates the elementary circuits of the directed multigraph
// induced by the pools (each pool contributes one arc per direction),
// using Johnson's algorithm (blocked sets with unblock lists).
//
// Options:
//   - maxLen bounds circuit length; 0 means unbounded. Depth pruning makes
//     the blocked-set heuristic unsafe, so when maxLen > 0 vertices touched
//     by a pruned branch are unblocked conservatively; results stay exact
//     at the cost of some re-exploration.
//   - excludeSamePoolBacktrack drops the length-2 circuits that traverse a
//     single pool forth and back — never profitable under a positive fee
//     and excluded by the paper's loop definition.
//   - limit caps the number of circuits (0 = unlimited); exceeding it
//     returns ErrTooMany.
//
// Every returned circuit is anchored at its smallest node index.
func Johnson(g *graph.Graph, maxLen int, excludeSamePoolBacktrack bool, limit int) ([]Directed, error) {
	if maxLen < 0 {
		return nil, fmt.Errorf("%w: maxLen %d", ErrBadLength, maxLen)
	}
	n := g.NumNodes()
	var out []Directed

	blocked := make([]bool, n)
	blist := make([][]int, n) // b-lists: unblocking dependencies
	path := make([]int, 0, 8)
	pathPools := make([]int, 0, 8)

	var unblock func(v int)
	unblock = func(v int) {
		blocked[v] = false
		for _, w := range blist[v] {
			if blocked[w] {
				unblock(w)
			}
		}
		blist[v] = blist[v][:0]
	}

	var circuit func(start, v int) (bool, bool, error)
	// circuit returns (foundCircuit, pruned, err).
	circuit = func(start, v int) (bool, bool, error) {
		found := false
		pruned := false
		path = append(path, v)
		blocked[v] = true

		for _, adj := range g.Adjacent(v) {
			w := adj.Neighbor
			if w < start {
				continue // subgraph induced on vertices ≥ start
			}
			if w == start {
				k := len(path)
				if k == 2 && excludeSamePoolBacktrack && adj.PoolIndex == pathPools[0] {
					continue
				}
				if maxLen > 0 && k > maxLen {
					continue
				}
				nodes := make([]int, k)
				copy(nodes, path)
				pools := make([]int, k)
				copy(pools, pathPools)
				pools[k-1] = adj.PoolIndex
				out = append(out, Directed{Nodes: nodes, Pools: pools})
				if limit > 0 && len(out) > limit {
					return false, false, fmt.Errorf("%w: more than %d", ErrTooMany, limit)
				}
				found = true
				continue
			}
			if !blocked[w] {
				if maxLen > 0 && len(path) >= maxLen {
					pruned = true
					continue
				}
				pathPools = append(pathPools, adj.PoolIndex)
				f, p, err := circuit(start, w)
				pathPools = pathPools[:len(pathPools)-1]
				if err != nil {
					return false, false, err
				}
				found = found || f
				pruned = pruned || p
			}
		}

		if found || pruned {
			// Unblock on success, and also when pruning may have hidden a
			// circuit (keeps the bounded variant exact).
			unblock(v)
		} else {
			for _, adj := range g.Adjacent(v) {
				w := adj.Neighbor
				if w < start {
					continue
				}
				already := false
				for _, x := range blist[w] {
					if x == v {
						already = true
						break
					}
				}
				if !already {
					blist[w] = append(blist[w], v)
				}
			}
		}

		path = path[:len(path)-1]
		return found, pruned, nil
	}

	for start := 0; start < n; start++ {
		for i := range blocked {
			blocked[i] = false
			blist[i] = blist[i][:0]
		}
		path = path[:0]
		pathPools = pathPools[:0]
		if _, _, err := circuit(start, start); err != nil {
			return nil, err
		}
	}
	return out, nil
}
