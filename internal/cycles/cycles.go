// Package cycles implements the loop-detection substrates the paper's
// related work uses on token exchange graphs:
//
//   - Enumerate: bounded-length DFS enumeration of undirected simple cycles
//     with canonical deduplication (each cycle reported once, up to
//     rotation and reflection). This is the workhorse behind the paper's
//     "traverse all token loops with 3 (or 4) tokens" step (§VI).
//   - Johnson: Johnson's elementary-circuit algorithm on the directed
//     multigraph induced by the pools (two arcs per pool), as used by
//     McLaughlin et al. for historic arbitrage mining.
//   - BellmanFordMoore: negative-cycle detection over −log(price) weights,
//     as used by Zhou et al. for just-in-time arbitrage discovery.
//
// A cycle becomes an *arbitrage loop* when the product of fee-adjusted spot
// prices along one of its two orientations exceeds 1; ArbitrageLoops
// performs that filtering.
package cycles

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"arbloop/internal/graph"
)

// Errors returned by the enumerators.
var (
	ErrBadLength  = errors.New("cycles: invalid length bounds")
	ErrTooMany    = errors.New("cycles: circuit limit exceeded")
	ErrNoNegCycle = errors.New("cycles: no negative cycle")
)

// Cycle is an undirected simple cycle in canonical form: Nodes[0] is the
// smallest node index, Nodes[1] < Nodes[len-1] (for length ≥ 3), and
// Pools[i] connects Nodes[i] with Nodes[(i+1)%len].
type Cycle struct {
	Nodes []int
	Pools []int
}

// Len returns the number of hops (= number of pools = number of tokens).
func (c Cycle) Len() int { return len(c.Nodes) }

// Directed is a directed traversal of a cycle: hop i swaps the input token
// Nodes[i] for Nodes[(i+1)%len] through pool Pools[i].
type Directed struct {
	Nodes []int
	Pools []int
}

// Len returns the number of hops.
func (d Directed) Len() int { return len(d.Nodes) }

// Forward returns the directed traversal following the cycle's stored
// order.
func (c Cycle) Forward() Directed {
	nodes := make([]int, len(c.Nodes))
	pools := make([]int, len(c.Pools))
	copy(nodes, c.Nodes)
	copy(pools, c.Pools)
	return Directed{Nodes: nodes, Pools: pools}
}

// Reverse returns the opposite orientation of the cycle, anchored at the
// same first node.
func (c Cycle) Reverse() Directed {
	k := len(c.Nodes)
	nodes := make([]int, k)
	pools := make([]int, k)
	nodes[0] = c.Nodes[0]
	for i := 1; i < k; i++ {
		nodes[i] = c.Nodes[k-i]
	}
	for i := 0; i < k; i++ {
		pools[i] = c.Pools[(k-1-i)%k]
	}
	return Directed{Nodes: nodes, Pools: pools}
}

// Rotate returns the directed loop re-anchored to start at hop offset.
// Rotations of an arbitrage loop are the different start tokens the
// MaxMax strategy evaluates.
func (d Directed) Rotate(offset int) Directed {
	k := len(d.Nodes)
	offset = ((offset % k) + k) % k
	nodes := make([]int, k)
	pools := make([]int, k)
	for i := 0; i < k; i++ {
		nodes[i] = d.Nodes[(i+offset)%k]
		pools[i] = d.Pools[(i+offset)%k]
	}
	return Directed{Nodes: nodes, Pools: pools}
}

// Enumerate lists all undirected simple cycles with length in
// [minLen, maxLen], each exactly once in canonical form. Cycles of length 2
// (two distinct pools between the same token pair) are supported when
// minLen ≤ 2. limit caps the number of cycles returned (0 = unlimited);
// exceeding it returns ErrTooMany.
func Enumerate(g *graph.Graph, minLen, maxLen, limit int) ([]Cycle, error) {
	if minLen < 2 || maxLen < minLen {
		return nil, fmt.Errorf("%w: [%d, %d]", ErrBadLength, minLen, maxLen)
	}
	n := g.NumNodes()
	var out []Cycle

	path := make([]int, 0, maxLen)      // node sequence, path[0] = start
	pathPools := make([]int, 0, maxLen) // pathPools[i] connects path[i], path[i+1]
	onPath := make([]bool, n)

	var dfs func(start, u int) error
	dfs = func(start, u int) error {
		for _, adj := range g.Adjacent(u) {
			v := adj.Neighbor
			if v == start && len(path) >= minLen {
				k := len(path)
				if k == 2 {
					// Two-pool loop: the closing pool must be distinct, and
					// requiring ascending pool order dedups the reflection.
					if adj.PoolIndex <= pathPools[0] {
						continue
					}
				} else if path[1] > path[k-1] {
					// Reflection canon: keep the orientation whose second
					// node has the smaller index.
					continue
				}
				nodes := make([]int, k)
				copy(nodes, path)
				pools := make([]int, k)
				copy(pools, pathPools)
				pools[k-1] = adj.PoolIndex
				out = append(out, Cycle{Nodes: nodes, Pools: pools})
				if limit > 0 && len(out) > limit {
					return fmt.Errorf("%w: more than %d", ErrTooMany, limit)
				}
				continue
			}
			if v > start && !onPath[v] && len(path) < maxLen {
				onPath[v] = true
				path = append(path, v)
				pathPools = append(pathPools, 0)
				pathPools[len(path)-2] = adj.PoolIndex
				if err := dfs(start, v); err != nil {
					return err
				}
				pathPools = pathPools[:len(pathPools)-1]
				path = path[:len(path)-1]
				onPath[v] = false
			}
		}
		return nil
	}

	for start := 0; start < n; start++ {
		onPath[start] = true
		path = append(path[:0], start)
		pathPools = pathPools[:0]
		if err := dfs(start, start); err != nil {
			return nil, err
		}
		onPath[start] = false
	}

	sortCycles(out)
	return out, nil
}

func sortCycles(cs []Cycle) {
	sort.Slice(cs, func(i, j int) bool {
		a, b := cs[i], cs[j]
		if len(a.Nodes) != len(b.Nodes) {
			return len(a.Nodes) < len(b.Nodes)
		}
		for k := range a.Nodes {
			if a.Nodes[k] != b.Nodes[k] {
				return a.Nodes[k] < b.Nodes[k]
			}
		}
		for k := range a.Pools {
			if a.Pools[k] != b.Pools[k] {
				return a.Pools[k] < b.Pools[k]
			}
		}
		return false
	})
}

// PriceProduct returns the product of fee-adjusted spot prices along the
// directed loop: Π γ·r_out/r_in. The loop is an arbitrage loop when the
// product exceeds 1 (paper §III).
func PriceProduct(g *graph.Graph, d Directed) (float64, error) {
	prod := 1.0
	for i := 0; i < d.Len(); i++ {
		pool := g.Pool(d.Pools[i])
		p, err := pool.SpotPrice(g.Node(d.Nodes[i]))
		if err != nil {
			return 0, fmt.Errorf("hop %d: %w", i, err)
		}
		prod *= p
	}
	return prod, nil
}

// LogPriceSum returns Σ log(p) along the loop; positive for arbitrage
// loops.
func LogPriceSum(g *graph.Graph, d Directed) (float64, error) {
	prod, err := PriceProduct(g, d)
	if err != nil {
		return 0, err
	}
	return math.Log(prod), nil
}

// ArbitrageLoops filters cycles down to profitable directed orientations.
// For each undirected cycle both orientations are tested; at most one can
// be profitable (the two orientations' price products multiply to
// γ^{2k} Π(r_j/r_i · r_i/r_j) = γ^{2k} < 1 for any positive fee).
func ArbitrageLoops(g *graph.Graph, cs []Cycle) ([]Directed, error) {
	out := make([]Directed, 0, len(cs))
	for _, c := range cs {
		for _, d := range []Directed{c.Forward(), c.Reverse()} {
			prod, err := PriceProduct(g, d)
			if err != nil {
				return nil, err
			}
			if prod > 1 {
				out = append(out, d)
				break
			}
		}
	}
	return out, nil
}

// Validate checks structural consistency of a directed loop against the
// graph: nodes distinct, pools distinct, and each pool connecting its
// consecutive node pair.
func Validate(g *graph.Graph, d Directed) error {
	k := d.Len()
	if k < 2 {
		return fmt.Errorf("%w: length %d", ErrBadLength, k)
	}
	if len(d.Pools) != k {
		return fmt.Errorf("cycles: %d nodes but %d pools", k, len(d.Pools))
	}
	seenNode := make(map[int]bool, k)
	seenPool := make(map[int]bool, k)
	for i := 0; i < k; i++ {
		u, v := d.Nodes[i], d.Nodes[(i+1)%k]
		if seenNode[u] {
			return fmt.Errorf("cycles: node %d repeated", u)
		}
		seenNode[u] = true
		if seenPool[d.Pools[i]] {
			return fmt.Errorf("cycles: pool %d repeated", d.Pools[i])
		}
		seenPool[d.Pools[i]] = true
		pool := g.Pool(d.Pools[i])
		tu, tv := g.Node(u), g.Node(v)
		if !(pool.Token0 == tu && pool.Token1 == tv) && !(pool.Token0 == tv && pool.Token1 == tu) {
			return fmt.Errorf("cycles: pool %d does not connect %s-%s", d.Pools[i], tu, tv)
		}
	}
	return nil
}
