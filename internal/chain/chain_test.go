package chain

import (
	"errors"
	"math/big"
	"sync"
	"testing"
)

func bi(v int64) *big.Int { return big.NewInt(v) }

// paperState sets up the Section V pools scaled ×10⁶ for integer headroom.
func paperState(t *testing.T) *State {
	t.Helper()
	s := NewState(1_693_526_400) // 2023-09-01 00:00 UTC
	const scale = 1_000_000
	add := func(id, t0, t1 string, r0, r1 int64) {
		t.Helper()
		if err := s.AddPool(id, t0, t1, bi(r0*scale), bi(r1*scale), 30); err != nil {
			t.Fatal(err)
		}
	}
	add("p1", "X", "Y", 100, 200)
	add("p2", "Y", "Z", 300, 200)
	add("p3", "Z", "X", 200, 400)
	return s
}

func TestAddPoolValidation(t *testing.T) {
	s := NewState(0)
	if err := s.AddPool("p", "X", "X", bi(1), bi(1), 30); err == nil {
		t.Error("identical tokens: want error")
	}
	if err := s.AddPool("p", "X", "Y", bi(0), bi(1), 30); err == nil {
		t.Error("zero reserve: want error")
	}
	if err := s.AddPool("p", "X", "Y", nil, bi(1), 30); err == nil {
		t.Error("nil reserve: want error")
	}
	if err := s.AddPool("p", "X", "Y", bi(1000), bi(1000), 30); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPool("p", "X", "Y", bi(1000), bi(1000), 30); !errors.Is(err, ErrDuplicatePair) {
		t.Errorf("duplicate pool error = %v", err)
	}
}

func TestStateAccessors(t *testing.T) {
	s := paperState(t)
	ids := s.PoolIDs()
	if len(ids) != 3 || ids[0] != "p1" {
		t.Errorf("PoolIDs = %v", ids)
	}
	t0, t1, err := s.PoolTokens("p2")
	if err != nil || t0 != "Y" || t1 != "Z" {
		t.Errorf("PoolTokens(p2) = %q, %q, %v", t0, t1, err)
	}
	if _, _, err := s.PoolTokens("nope"); !errors.Is(err, ErrUnknownPair) {
		t.Errorf("unknown pair error = %v", err)
	}
	r0, r1, err := s.Reserves("p1")
	if err != nil || r0.Cmp(bi(100_000_000)) != 0 || r1.Cmp(bi(200_000_000)) != 0 {
		t.Errorf("Reserves(p1) = %s, %s, %v", r0, r1, err)
	}
	if _, _, err := s.Reserves("nope"); !errors.Is(err, ErrUnknownPair) {
		t.Errorf("unknown reserves error = %v", err)
	}
}

func TestExecuteProfitableArbitrage(t *testing.T) {
	s := paperState(t)
	// Paper: borrowing ~27 X (here 27e6 integer units) yields ~16.8e6 X.
	tx := Tx{
		Borrow: "X",
		Amount: bi(27_000_000),
		Steps: []SwapStep{
			{PairID: "p1", TokenIn: "X"},
			{PairID: "p2", TokenIn: "Y"},
			{PairID: "p3", TokenIn: "Z"},
		},
	}
	rcpt := s.ExecuteTx(tx)
	if !rcpt.OK {
		t.Fatalf("tx reverted: %v", rcpt.Err)
	}
	profit := rcpt.Profit["X"]
	if profit == nil {
		t.Fatal("no X profit recorded")
	}
	got := profit.Int64()
	if got < 16_500_000 || got > 17_100_000 {
		t.Errorf("profit = %d, want ≈ 16.8e6 (paper)", got)
	}
	// Intermediate tokens fully consumed.
	if rcpt.Profit["Y"] != nil || rcpt.Profit["Z"] != nil {
		t.Errorf("unexpected intermediate profit: %v", rcpt.Profit)
	}
	// Reserves moved.
	r0, _, err := s.Reserves("p1")
	if err != nil {
		t.Fatal(err)
	}
	if r0.Cmp(bi(127_000_000)) != 0 {
		t.Errorf("p1 reserve0 = %s, want 127000000", r0)
	}
}

func TestExecuteUnprofitableReverts(t *testing.T) {
	s := paperState(t)
	// Reverse direction is guaranteed to lose money.
	tx := Tx{
		Borrow: "X",
		Amount: bi(10_000_000),
		Steps: []SwapStep{
			{PairID: "p3", TokenIn: "X"},
			{PairID: "p2", TokenIn: "Z"},
			{PairID: "p1", TokenIn: "Y"},
		},
	}
	before, _, err := s.Reserves("p3")
	if err != nil {
		t.Fatal(err)
	}
	_ = before
	r3b, _, _ := s.Reserves("p3")
	rcpt := s.ExecuteTx(tx)
	if rcpt.OK {
		t.Fatal("losing tx committed")
	}
	if !errors.Is(rcpt.Err, ErrUnprofitable) {
		t.Errorf("revert reason = %v, want ErrUnprofitable", rcpt.Err)
	}
	// State untouched after revert.
	r3a, _, err := s.Reserves("p3")
	if err != nil {
		t.Fatal(err)
	}
	if r3a.Cmp(r3b) != 0 {
		t.Error("revert leaked state changes")
	}
}

func TestExecuteTxValidation(t *testing.T) {
	s := paperState(t)
	tests := []struct {
		name string
		tx   Tx
		want error
	}{
		{name: "empty", tx: Tx{}, want: ErrBadTx},
		{name: "zero amount", tx: Tx{Borrow: "X", Amount: bi(0), Steps: []SwapStep{{PairID: "p1", TokenIn: "X"}}}, want: ErrBadTx},
		{name: "no steps", tx: Tx{Borrow: "X", Amount: bi(1)}, want: ErrBadTx},
		{name: "unknown pair", tx: Tx{Borrow: "X", Amount: bi(100), Steps: []SwapStep{{PairID: "nope", TokenIn: "X"}}}, want: ErrUnknownPair},
		{name: "token not in pair", tx: Tx{Borrow: "X", Amount: bi(100), Steps: []SwapStep{{PairID: "p2", TokenIn: "X"}}}, want: ErrBadTx},
		{name: "unfunded step", tx: Tx{Borrow: "X", Amount: bi(100), Steps: []SwapStep{{PairID: "p2", TokenIn: "Y"}}}, want: ErrUnfunded},
		{name: "overspend", tx: Tx{Borrow: "X", Amount: bi(100), Steps: []SwapStep{{PairID: "p1", TokenIn: "X", AmountIn: bi(1_000)}}}, want: ErrUnfunded},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rcpt := s.ExecuteTx(tt.tx)
			if rcpt.OK {
				t.Fatal("tx committed")
			}
			if !errors.Is(rcpt.Err, tt.want) {
				t.Errorf("error = %v, want %v", rcpt.Err, tt.want)
			}
		})
	}
}

func TestExecutePartialSpendKeepsRemainder(t *testing.T) {
	s := paperState(t)
	tx := Tx{
		Borrow: "X",
		Amount: bi(30_000_000),
		Steps: []SwapStep{
			// Spend only 27e6 of the 30e6 borrowed.
			{PairID: "p1", TokenIn: "X", AmountIn: bi(27_000_000)},
			{PairID: "p2", TokenIn: "Y"},
			{PairID: "p3", TokenIn: "Z"},
		},
	}
	rcpt := s.ExecuteTx(tx)
	if !rcpt.OK {
		t.Fatalf("tx reverted: %v", rcpt.Err)
	}
	// Profit should match the 27e6 plan: leftover 3e6 counts toward loan
	// repayment, net profit unchanged.
	got := rcpt.Profit["X"].Int64()
	if got < 16_500_000 || got > 17_100_000 {
		t.Errorf("profit = %d, want ≈ 16.8e6", got)
	}
}

func TestBlockAdvancesClockAndAppliesTxs(t *testing.T) {
	s := paperState(t)
	h0, t0 := s.Height(), s.Timestamp()

	good := Tx{Borrow: "X", Amount: bi(27_000_000), Steps: []SwapStep{
		{PairID: "p1", TokenIn: "X"}, {PairID: "p2", TokenIn: "Y"}, {PairID: "p3", TokenIn: "Z"},
	}}
	bad := Tx{Borrow: "X", Amount: bi(1)}

	receipts := s.Block([]Tx{good, bad})
	if len(receipts) != 2 {
		t.Fatalf("receipts = %d", len(receipts))
	}
	if !receipts[0].OK || receipts[1].OK {
		t.Errorf("receipt status = %v, %v; want ok, failed", receipts[0].OK, receipts[1].OK)
	}
	if receipts[0].Block != h0+1 {
		t.Errorf("tx block = %d, want %d", receipts[0].Block, h0+1)
	}
	if s.Height() != h0+1 {
		t.Errorf("height = %d, want %d", s.Height(), h0+1)
	}
	if s.Timestamp() != t0+DefaultBlockIntervalSeconds {
		t.Errorf("timestamp = %d, want +%d", s.Timestamp(), DefaultBlockIntervalSeconds)
	}
}

func TestSetBlockInterval(t *testing.T) {
	s := paperState(t)
	s.SetBlockInterval(12)
	t0 := s.Timestamp()
	s.Block(nil)
	if s.Timestamp() != t0+12 {
		t.Errorf("timestamp advanced by %d, want 12", s.Timestamp()-t0)
	}
	s.SetBlockInterval(0) // ignored
	t1 := s.Timestamp()
	s.Block(nil)
	if s.Timestamp() != t1+12 {
		t.Error("zero interval should be ignored")
	}
}

func TestSecondArbitrageLessProfitable(t *testing.T) {
	s := paperState(t)
	plan := func() Receipt {
		return s.ExecuteTx(Tx{Borrow: "X", Amount: bi(27_000_000), Steps: []SwapStep{
			{PairID: "p1", TokenIn: "X"}, {PairID: "p2", TokenIn: "Y"}, {PairID: "p3", TokenIn: "Z"},
		}})
	}
	first := plan()
	if !first.OK {
		t.Fatalf("first tx reverted: %v", first.Err)
	}
	second := plan()
	if second.OK {
		// The same plan re-run after the pools moved must earn less (the
		// first execution consumed the opportunity).
		if second.Profit["X"].Cmp(first.Profit["X"]) >= 0 {
			t.Errorf("second run profit %s ≥ first %s", second.Profit["X"], first.Profit["X"])
		}
	}
}

func TestConcurrentExecution(t *testing.T) {
	s := paperState(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				s.ExecuteTx(Tx{Borrow: "X", Amount: bi(100_000), Steps: []SwapStep{
					{PairID: "p1", TokenIn: "X"}, {PairID: "p2", TokenIn: "Y"}, {PairID: "p3", TokenIn: "Z"},
				}})
			}
		}()
	}
	wg.Wait()
	r0, r1, err := s.Reserves("p1")
	if err != nil || r0.Sign() <= 0 || r1.Sign() <= 0 {
		t.Errorf("reserves after concurrency: %s, %s, %v", r0, r1, err)
	}
}

func TestDirectSwap(t *testing.T) {
	s := paperState(t)
	out, err := s.Swap("p1", "X", bi(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if out.Sign() <= 0 {
		t.Errorf("swap output = %s", out)
	}
	r0, r1, err := s.Reserves("p1")
	if err != nil {
		t.Fatal(err)
	}
	if r0.Cmp(bi(101_000_000)) != 0 {
		t.Errorf("reserve0 after direct swap = %s, want 101000000", r0)
	}
	wantR1 := new(big.Int).Sub(bi(200_000_000), out)
	if r1.Cmp(wantR1) != 0 {
		t.Errorf("reserve1 = %s, want %s", r1, wantR1)
	}
}

func TestDirectSwapErrors(t *testing.T) {
	s := paperState(t)
	if _, err := s.Swap("nope", "X", bi(1)); !errors.Is(err, ErrUnknownPair) {
		t.Errorf("unknown pair error = %v", err)
	}
	if _, err := s.Swap("p1", "Q", bi(1)); !errors.Is(err, ErrBadTx) {
		t.Errorf("unknown token error = %v", err)
	}
	if _, err := s.Swap("p1", "X", bi(0)); !errors.Is(err, ErrBadTx) {
		t.Errorf("zero amount error = %v", err)
	}
	if _, err := s.Swap("p1", "X", nil); !errors.Is(err, ErrBadTx) {
		t.Errorf("nil amount error = %v", err)
	}
}

func TestOnBlockHook(t *testing.T) {
	s := paperState(t)
	var got []int64
	s.OnBlock(func(h int64) {
		// Callbacks run outside the state lock: reads must not deadlock.
		if s.Height() != h {
			t.Errorf("state height %d != notified %d", s.Height(), h)
		}
		got = append(got, h)
	})
	s.OnBlock(nil) // ignored

	s.Block(nil)
	s.Block(nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("notified heights = %v, want [1 2]", got)
	}

	// ExecuteTx is not a block: no notification.
	s.ExecuteTx(Tx{Borrow: "X", Amount: bi(1), Steps: []SwapStep{{PairID: "p1", TokenIn: "X"}}})
	if len(got) != 2 {
		t.Errorf("ExecuteTx notified: %v", got)
	}
}
