// Package chain is a minimal single-process chain simulator for executing
// arbitrage plans atomically. The paper notes that a loop's swaps should
// execute "in the same transaction by applying flash loan" so the plan
// either completes entirely or reverts; this package reproduces exactly
// that behaviour:
//
//   - State holds pool reserves (exact big.Int arithmetic, Uniswap V2
//     rounding via package amm).
//   - A Tx borrows its initial input (flash loan), runs a sequence of
//     swaps, repays the loan, and keeps the surplus as profit. If the
//     proceeds cannot repay the loan, the transaction reverts and the
//     state is untouched.
//   - Blocks apply transaction batches and advance the clock (the paper
//     cites a ~10 s average block time, which bounds how long a solver may
//     run before its plan goes stale).
package chain

import (
	"errors"
	"fmt"
	"math/big"
	"sort"
	"sync"

	"arbloop/internal/amm"
)

// Errors returned by the simulator.
var (
	ErrUnknownPair   = errors.New("chain: unknown pair")
	ErrDuplicatePair = errors.New("chain: duplicate pair")
	ErrUnfunded      = errors.New("chain: step has no funds for its input token")
	ErrUnprofitable  = errors.New("chain: proceeds cannot repay flash loan")
	ErrBadTx         = errors.New("chain: malformed transaction")
)

// DefaultBlockIntervalSeconds matches the paper's cited ~10 s block time.
const DefaultBlockIntervalSeconds = 10

// poolState is the on-chain reserve record of one pair.
type poolState struct {
	token0, token1     string
	reserve0, reserve1 *big.Int
	feeBps             int64
}

func (p *poolState) clone() *poolState {
	return &poolState{
		token0:   p.token0,
		token1:   p.token1,
		reserve0: new(big.Int).Set(p.reserve0),
		reserve1: new(big.Int).Set(p.reserve1),
		feeBps:   p.feeBps,
	}
}

// State is the chain state: pools plus a block clock. Safe for concurrent
// use.
type State struct {
	mu        sync.RWMutex
	pools     map[string]*poolState
	height    int64
	timestamp int64
	interval  int64
	onBlock   []func(height int64)
}

// NewState creates an empty chain at the given genesis unix time.
func NewState(genesisTime int64) *State {
	return &State{
		pools:     make(map[string]*poolState),
		timestamp: genesisTime,
		interval:  DefaultBlockIntervalSeconds,
	}
}

// SetBlockInterval overrides the seconds-per-block (default 10).
func (s *State) SetBlockInterval(seconds int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seconds > 0 {
		s.interval = seconds
	}
}

// AddPool registers a pool with integer reserves.
func (s *State) AddPool(id, token0, token1 string, reserve0, reserve1 *big.Int, feeBps int64) error {
	if token0 == token1 {
		return fmt.Errorf("%w: identical tokens in %q", ErrBadTx, id)
	}
	if reserve0 == nil || reserve1 == nil || reserve0.Sign() <= 0 || reserve1.Sign() <= 0 {
		return fmt.Errorf("chain: pool %q needs positive reserves", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.pools[id]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicatePair, id)
	}
	s.pools[id] = &poolState{
		token0:   token0,
		token1:   token1,
		reserve0: new(big.Int).Set(reserve0),
		reserve1: new(big.Int).Set(reserve1),
		feeBps:   feeBps,
	}
	return nil
}

// Reserves returns copies of a pool's reserves.
func (s *State) Reserves(id string) (r0, r1 *big.Int, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.pools[id]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownPair, id)
	}
	return new(big.Int).Set(p.reserve0), new(big.Int).Set(p.reserve1), nil
}

// Height returns the current block height.
func (s *State) Height() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.height
}

// Timestamp returns the current chain time (unix seconds).
func (s *State) Timestamp() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.timestamp
}

// SwapStep is one hop of an arbitrage transaction. A nil AmountIn spends
// the executor's entire balance of TokenIn, which is the natural encoding
// of "thread all proceeds into the next pool".
type SwapStep struct {
	PairID   string
	TokenIn  string
	AmountIn *big.Int
}

// Tx is an atomic flash-loan arbitrage: borrow Amount of Borrow, run
// Steps, repay, keep the surplus.
type Tx struct {
	// Borrow is the flash-loaned token.
	Borrow string
	// Amount is the flash-loaned quantity.
	Amount *big.Int
	// Steps are executed in order.
	Steps []SwapStep
}

// Receipt reports an executed (or reverted) transaction.
type Receipt struct {
	// OK is true when the transaction committed.
	OK bool
	// Err is the revert reason when OK is false.
	Err error
	// Profit maps token → net amount kept after repaying the loan.
	Profit map[string]*big.Int
	// Block is the height at which the tx executed.
	Block int64
}

// ExecuteTx runs one transaction atomically against the current state:
// the state mutates only if the transaction succeeds.
func (s *State) ExecuteTx(tx Tx) Receipt {
	s.mu.Lock()
	defer s.mu.Unlock()
	rcpt := s.executeLocked(tx)
	rcpt.Block = s.height
	return rcpt
}

func (s *State) executeLocked(tx Tx) Receipt {
	if tx.Borrow == "" || tx.Amount == nil || tx.Amount.Sign() <= 0 || len(tx.Steps) == 0 {
		return Receipt{Err: fmt.Errorf("%w: need borrow token, positive amount, steps", ErrBadTx)}
	}

	// Stage: copy-on-write of the touched pools only.
	staged := make(map[string]*poolState, len(tx.Steps))
	stagedPool := func(id string) (*poolState, error) {
		if p, ok := staged[id]; ok {
			return p, nil
		}
		p, ok := s.pools[id]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownPair, id)
		}
		cp := p.clone()
		staged[id] = cp
		return cp, nil
	}

	balances := map[string]*big.Int{tx.Borrow: new(big.Int).Set(tx.Amount)}
	for i, step := range tx.Steps {
		pool, err := stagedPool(step.PairID)
		if err != nil {
			return Receipt{Err: fmt.Errorf("step %d: %w", i, err)}
		}
		if step.TokenIn != pool.token0 && step.TokenIn != pool.token1 {
			return Receipt{Err: fmt.Errorf("step %d: %w: token %q not in pair %q", i, ErrBadTx, step.TokenIn, step.PairID)}
		}
		spend := step.AmountIn
		if spend == nil {
			spend = balances[step.TokenIn]
		}
		if spend == nil || spend.Sign() <= 0 {
			return Receipt{Err: fmt.Errorf("step %d: %w: token %q", i, ErrUnfunded, step.TokenIn)}
		}
		// Copy: spend may alias the balance entry mutated below.
		amountIn := new(big.Int).Set(spend)
		have := balances[step.TokenIn]
		if have == nil || have.Cmp(amountIn) < 0 {
			return Receipt{Err: fmt.Errorf("step %d: %w: need %s %s", i, ErrUnfunded, amountIn, step.TokenIn)}
		}

		rin, rout := pool.reserve0, pool.reserve1
		tokenOut := pool.token1
		if step.TokenIn == pool.token1 {
			rin, rout = pool.reserve1, pool.reserve0
			tokenOut = pool.token0
		}
		out, err := amm.GetAmountOut(amountIn, rin, rout, pool.feeBps)
		if err != nil {
			return Receipt{Err: fmt.Errorf("step %d: %w", i, err)}
		}
		if out.Sign() <= 0 {
			return Receipt{Err: fmt.Errorf("step %d: %w", i, amm.ErrInsufficientOutputAmount)}
		}
		// Move funds and reserves.
		have.Sub(have, amountIn)
		rin.Add(rin, amountIn)
		rout.Sub(rout, out)
		if b := balances[tokenOut]; b != nil {
			b.Add(b, out)
		} else {
			balances[tokenOut] = out
		}
	}

	// Repay the flash loan.
	borrowBal := balances[tx.Borrow]
	if borrowBal == nil || borrowBal.Cmp(tx.Amount) < 0 {
		short := new(big.Int).Set(tx.Amount)
		if borrowBal != nil {
			short.Sub(short, borrowBal)
		}
		return Receipt{Err: fmt.Errorf("%w: short %s %s", ErrUnprofitable, short, tx.Borrow)}
	}
	borrowBal.Sub(borrowBal, tx.Amount)

	// Commit staged pools.
	for id, p := range staged {
		s.pools[id] = p
	}
	profit := make(map[string]*big.Int)
	for tok, bal := range balances {
		if bal.Sign() > 0 {
			profit[tok] = bal
		}
	}
	return Receipt{OK: true, Profit: profit}
}

// OnBlock registers a callback invoked with the new height after every
// sealed block — the native notification hook a live pool feed subscribes
// to instead of polling. Callbacks run synchronously on the sealing
// goroutine, outside the state lock, so they may read the state freely;
// a slow callback delays block production, so long work belongs behind a
// channel (see feed.Watcher.Notify, which is non-blocking by design).
func (s *State) OnBlock(fn func(height int64)) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onBlock = append(s.onBlock, fn)
}

// Block applies a batch of transactions in order (failed transactions
// revert individually, as on a real chain), advances the clock, and
// notifies OnBlock subscribers.
func (s *State) Block(txs []Tx) []Receipt {
	receipts, height, hooks := s.sealBlock(txs)
	// Hooks run outside the lock so they may read the state freely.
	for _, fn := range hooks {
		fn(height)
	}
	return receipts
}

// sealBlock is the locked half of Block, deferred-unlock so a panic in
// transaction execution cannot leave the state mutex held.
func (s *State) sealBlock(txs []Tx) ([]Receipt, int64, []func(int64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	receipts := make([]Receipt, 0, len(txs))
	s.height++
	s.timestamp += s.interval
	for _, tx := range txs {
		r := s.executeLocked(tx)
		r.Block = s.height
		receipts = append(receipts, r)
	}
	hooks := make([]func(int64), len(s.onBlock))
	copy(hooks, s.onBlock)
	return receipts, s.height, hooks
}

// PoolIDs lists registered pools sorted for deterministic iteration.
func (s *State) PoolIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.pools))
	for id := range s.pools {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// PoolTokens returns the token pair of a pool.
func (s *State) PoolTokens(id string) (token0, token1 string, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.pools[id]
	if !ok {
		return "", "", fmt.Errorf("%w: %q", ErrUnknownPair, id)
	}
	return p.token0, p.token1, nil
}

// PoolFee returns a pool's fee in basis points.
func (s *State) PoolFee(id string) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.pools[id]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownPair, id)
	}
	return p.feeBps, nil
}

// Swap executes a single one-way swap against a pool outside the
// flash-loan machinery — the retail/noise-trader path. It returns the
// output amount.
func (s *State) Swap(pairID, tokenIn string, amountIn *big.Int) (*big.Int, error) {
	if amountIn == nil || amountIn.Sign() <= 0 {
		return nil, fmt.Errorf("%w: non-positive input", ErrBadTx)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pools[pairID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPair, pairID)
	}
	if tokenIn != p.token0 && tokenIn != p.token1 {
		return nil, fmt.Errorf("%w: token %q not in pair %q", ErrBadTx, tokenIn, pairID)
	}
	rin, rout := p.reserve0, p.reserve1
	if tokenIn == p.token1 {
		rin, rout = p.reserve1, p.reserve0
	}
	out, err := amm.GetAmountOut(amountIn, rin, rout, p.feeBps)
	if err != nil {
		return nil, err
	}
	if out.Sign() <= 0 || out.Cmp(rout) >= 0 {
		return nil, amm.ErrInsufficientLiquidity
	}
	rin.Add(rin, amountIn)
	rout.Sub(rout, out)
	return out, nil
}
