// Package linalg implements the small dense linear algebra kernel used by
// the convex optimizer: vectors, matrices, Cholesky and LU factorizations,
// and triangular solves. Problem sizes in this library are tiny (a handful
// of variables per arbitrage loop), so the implementations favour clarity
// and numerical robustness over blocking or SIMD.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Errors returned by factorizations and solves.
var (
	ErrDimensionMismatch   = errors.New("linalg: dimension mismatch")
	ErrNotPositiveDefinite = errors.New("linalg: matrix not positive definite")
	ErrSingular            = errors.New("linalg: matrix is singular")
)

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Zero sets every entry to 0 in place.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// CopyFrom overwrites v with w in place — the allocation-free
// counterpart of Clone for solver hot loops.
func (v Vector) CopyFrom(w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	copy(v, w)
	return nil
}

// Add returns v + w.
func (v Vector) Add(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out, nil
}

// Sub returns v − w.
func (v Vector) Sub(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out, nil
}

// Scale returns s·v.
func (v Vector) Scale(s float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = s * v[i]
	}
	return out
}

// AXPY computes v ← v + s·w in place.
func (v Vector) AXPY(s float64, w Vector) error {
	if len(v) != len(w) {
		return fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	for i := range v {
		v[i] += s * w[i]
	}
	return nil
}

// Dot returns vᵀw.
func (v Vector) Dot(w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(v), len(w))
	}
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s, nil
}

// Norm2 returns the Euclidean norm with overflow-safe scaling.
func (v Vector) Norm2() float64 {
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the max-abs norm.
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %d×%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from row slices.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("%w: empty rows", ErrDimensionMismatch)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("%w: row %d has %d cols, want %d", ErrDimensionMismatch, i, len(r), m.cols)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the row count.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Matrix) Cols() int { return m.cols }

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Add assigns m[i,j] += v.
func (m *Matrix) Add(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Zero sets every entry to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// CopyFrom overwrites m with b in place — the allocation-free
// counterpart of Clone for solver hot loops.
func (m *Matrix) CopyFrom(b *Matrix) error {
	if m.rows != b.rows || m.cols != b.cols {
		return fmt.Errorf("%w: %d×%d vs %d×%d", ErrDimensionMismatch, m.rows, m.cols, b.rows, b.cols)
	}
	copy(m.data, b.data)
	return nil
}

// MulVec returns m·v.
func (m *Matrix) MulVec(v Vector) (Vector, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("%w: %d×%d times %d", ErrDimensionMismatch, m.rows, m.cols, len(v))
	}
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("%w: %d×%d times %d×%d", ErrDimensionMismatch, m.rows, m.cols, b.rows, b.cols)
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				out.Add(i, j, a*b.At(k, j))
			}
		}
	}
	return out, nil
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%12.6g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// Cholesky computes the lower-triangular L with L·Lᵀ = m for a symmetric
// positive definite m. Only the lower triangle of m is read.
func (m *Matrix) Cholesky() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("%w: %d×%d not square", ErrDimensionMismatch, m.rows, m.cols)
	}
	n := m.rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := m.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: pivot %d is %g", ErrNotPositiveDefinite, j, d)
		}
		dj := math.Sqrt(d)
		l.Set(j, j, dj)
		for i := j + 1; i < n; i++ {
			s := m.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/dj)
		}
	}
	return l, nil
}

// SolveCholesky solves m·x = b via Cholesky (m symmetric positive definite).
func (m *Matrix) SolveCholesky(b Vector) (Vector, error) {
	l, err := m.Cholesky()
	if err != nil {
		return nil, err
	}
	y, err := l.ForwardSolve(b)
	if err != nil {
		return nil, err
	}
	return l.Transpose().BackwardSolve(y)
}

// ForwardSolve solves L·y = b for lower-triangular L.
func (m *Matrix) ForwardSolve(b Vector) (Vector, error) {
	if m.rows != m.cols || m.rows != len(b) {
		return nil, fmt.Errorf("%w: %d×%d with rhs %d", ErrDimensionMismatch, m.rows, m.cols, len(b))
	}
	n := m.rows
	y := make(Vector, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= m.At(i, j) * y[j]
		}
		d := m.At(i, i)
		if d == 0 {
			return nil, fmt.Errorf("%w: zero diagonal at %d", ErrSingular, i)
		}
		y[i] = s / d
	}
	return y, nil
}

// BackwardSolve solves U·x = b for upper-triangular U.
func (m *Matrix) BackwardSolve(b Vector) (Vector, error) {
	if m.rows != m.cols || m.rows != len(b) {
		return nil, fmt.Errorf("%w: %d×%d with rhs %d", ErrDimensionMismatch, m.rows, m.cols, len(b))
	}
	n := m.rows
	x := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		d := m.At(i, i)
		if d == 0 {
			return nil, fmt.Errorf("%w: zero diagonal at %d", ErrSingular, i)
		}
		x[i] = s / d
	}
	return x, nil
}

// LU computes a partially pivoted LU factorization. It returns the combined
// LU matrix (unit lower triangle implicit) and the permutation.
func (m *Matrix) LU() (*Matrix, []int, error) {
	if m.rows != m.cols {
		return nil, nil, fmt.Errorf("%w: %d×%d not square", ErrDimensionMismatch, m.rows, m.cols)
	}
	n := m.rows
	lu := m.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot.
		p, maxAbs := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > maxAbs {
				p, maxAbs = i, a
			}
		}
		if maxAbs == 0 || math.IsNaN(maxAbs) {
			return nil, nil, fmt.Errorf("%w: column %d", ErrSingular, k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				a, b := lu.At(k, j), lu.At(p, j)
				lu.Set(k, j, b)
				lu.Set(p, j, a)
			}
			perm[k], perm[p] = perm[p], perm[k]
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivot
			lu.Set(i, k, f)
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -f*lu.At(k, j))
			}
		}
	}
	return lu, perm, nil
}

// SolveLU solves m·x = b via LU with partial pivoting. Works for any
// non-singular square m.
func (m *Matrix) SolveLU(b Vector) (Vector, error) {
	if m.rows != len(b) {
		return nil, fmt.Errorf("%w: %d×%d with rhs %d", ErrDimensionMismatch, m.rows, m.cols, len(b))
	}
	lu, perm, err := m.LU()
	if err != nil {
		return nil, err
	}
	n := m.rows
	// Apply permutation to rhs.
	pb := make(Vector, n)
	for i, p := range perm {
		pb[i] = b[p]
	}
	// Forward solve with implicit unit diagonal.
	y := make(Vector, n)
	for i := 0; i < n; i++ {
		s := pb[i]
		for j := 0; j < i; j++ {
			s -= lu.At(i, j) * y[j]
		}
		y[i] = s
	}
	// Backward solve.
	x := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= lu.At(i, j) * x[j]
		}
		x[i] = s / lu.At(i, i)
	}
	return x, nil
}
