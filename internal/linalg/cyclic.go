// Cyclic tridiagonal SPD systems in O(n). The barrier-method Newton
// system of the reduced arbitrage-loop problem (convexopt.LoopProblem)
// has exactly this shape: the objective Hessian is diagonal and flow
// constraint i couples only variables i and i+1 (mod n), so the full
// Hessian is symmetric tridiagonal plus the two cyclic corner entries
// (0, n−1) and (n−1, 0). A dense Cholesky pays O(n³) and an allocation
// per factor; the bordered LDLᵀ below pays O(n) and none.
package linalg

import (
	"fmt"
	"math"
)

// CyclicSPD is a symmetric positive-definite matrix of cyclic
// tridiagonal form
//
//	A[i][i]           = Diag[i]
//	A[i][i+1 mod n]   = A[i+1 mod n][i] = Off[i]
//
// with an O(n) LDLᵀ factorization. The last row/column is treated as a
// border: eliminating the leading (n−1)×(n−1) tridiagonal block fills
// only the border row, so factor and solve both stay linear in n. For
// n = 2 the two off-diagonal couplings Off[0] and Off[1] address the
// same matrix entry and are summed.
//
// All storage is owned by the value and recycled by Reset, so a solver
// hot loop can refactor and resolve every Newton iteration without
// touching the allocator.
type CyclicSPD struct {
	n int
	// Diag and Off are the matrix coefficients, (re)zeroed by Reset and
	// filled by the caller before Factor.
	Diag, Off []float64
	// Factorization state: l holds the subdiagonal multipliers
	// (length max(n−2, 0)), z the border-row multipliers (length n−1),
	// d the pivots (length n).
	l, z, d []float64
}

// Reset prepares the matrix for order n (n ≥ 2), zeroing Diag and Off.
// Slices are reallocated only when capacity is short.
func (c *CyclicSPD) Reset(n int) {
	if n < 2 {
		panic(fmt.Sprintf("linalg: CyclicSPD needs order >= 2, got %d", n))
	}
	c.n = n
	c.Diag = resize(c.Diag, n)
	c.Off = resize(c.Off, n)
	c.l = resize(c.l, max(n-2, 0))
	c.z = resize(c.z, n-1)
	c.d = resize(c.d, n)
	clear(c.Diag)
	clear(c.Off)
}

// resize returns s with length n, reallocating only when capacity is
// short. Contents are unspecified.
func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Order returns the matrix order set by the last Reset.
func (c *CyclicSPD) Order() int { return c.n }

// errNotReset reports factoring before Reset; built once so the
// annotated factorization carries no fmt machinery.
var errNotReset = fmt.Errorf("%w: CyclicSPD not Reset", ErrDimensionMismatch)

// pivotErr builds the non-positive-pivot failure. Kept out of the
// annotated factorization loop: it only runs when the factorization is
// already failing (and about to be retried with a ridge).
func pivotErr(j int, v float64) error {
	return fmt.Errorf("%w: pivot %d is %g", ErrNotPositiveDefinite, j, v)
}

// dimErr builds the length-mismatch failure for Solve/MulVec — a
// cold programming-error path hoisted out of the annotated solves.
func dimErr(what string, n, in, out int) error {
	return fmt.Errorf("%w: order %d with %s %d into %d", ErrDimensionMismatch, n, what, in, out)
}

// Factor computes the LDLᵀ factorization. It fails with
// ErrNotPositiveDefinite when a pivot is non-positive (or NaN); the
// coefficients in Diag/Off are left untouched either way, so the caller
// can retry with a ridge (FactorRidged).
func (c *CyclicSPD) Factor() error { return c.FactorRidged(0) }

// FactorRidged factors A + ridge·I without mutating Diag. It runs once
// per Newton iteration of every loop solve and must stay allocation-free
// (checked by arblint's hotpath analyzer).
//
//arblint:hotpath
func (c *CyclicSPD) FactorRidged(ridge float64) error {
	n := c.n
	if n < 2 {
		return errNotReset
	}
	d, l, z := c.d, c.l, c.z

	d[0] = c.Diag[0] + ridge
	if !(d[0] > 0) {
		return pivotErr(0, d[0])
	}
	// Border entry A[n−1][0]: the cyclic corner, plus — for n = 2 only —
	// the coincident subdiagonal coupling.
	a0 := c.Off[n-1]
	if n == 2 {
		a0 += c.Off[0]
	}
	z[0] = a0 / d[0]

	for j := 1; j <= n-2; j++ {
		lj := c.Off[j-1] / d[j-1]
		l[j-1] = lj
		d[j] = c.Diag[j] + ridge - c.Off[j-1]*lj
		if !(d[j] > 0) {
			return pivotErr(j, d[j])
		}
		aj := 0.0
		if j == n-2 {
			aj = c.Off[n-2]
		}
		z[j] = (aj - z[j-1]*d[j-1]*l[j-1]) / d[j]
	}

	last := c.Diag[n-1] + ridge
	for j := 0; j <= n-2; j++ {
		last -= z[j] * z[j] * d[j]
	}
	if !(last > 0) {
		return pivotErr(n-1, last)
	}
	d[n-1] = last
	return nil
}

// Solve solves A·x = b using the last successful Factor. x and b must
// have length n; x may alias b for an in-place solve. Paired with
// FactorRidged on the Newton hot loop; allocation-free (checked by
// arblint's hotpath analyzer).
//
//arblint:hotpath
func (c *CyclicSPD) Solve(b, x []float64) error {
	n := c.n
	if len(b) != n || len(x) != n {
		return dimErr("rhs", n, len(b), len(x))
	}
	d, l, z := c.d, c.l, c.z

	// Forward: L·y = b (y stored in x).
	x[0] = b[0]
	for j := 1; j <= n-2; j++ {
		x[j] = b[j] - l[j-1]*x[j-1]
	}
	s := b[n-1]
	for j := 0; j <= n-2; j++ {
		s -= z[j] * x[j]
	}
	x[n-1] = s

	// Scale: D·c = y.
	for j := 0; j < n; j++ {
		x[j] /= d[j]
	}

	// Backward: Lᵀ·x = c.
	x[n-2] -= z[n-2] * x[n-1]
	for j := n - 3; j >= 0; j-- {
		x[j] -= l[j]*x[j+1] + z[j]*x[n-1]
	}
	return nil
}

// MulVec computes y = A·x from the coefficients (not the factorization);
// a residual-check helper for tests and diagnostics.
func (c *CyclicSPD) MulVec(x, y []float64) error {
	n := c.n
	if len(x) != n || len(y) != n {
		return dimErr("x", n, len(x), len(y))
	}
	if n == 2 {
		e := c.Off[0] + c.Off[1]
		y0 := c.Diag[0]*x[0] + e*x[1]
		y[1] = e*x[0] + c.Diag[1]*x[1]
		y[0] = y0
		return nil
	}
	for i := 0; i < n; i++ {
		s := c.Diag[i] * x[i]
		s += c.Off[i] * x[(i+1)%n]
		s += c.Off[(i-1+n)%n] * x[(i-1+n)%n]
		y[i] = s
	}
	return nil
}

// Dense expands the coefficients into a dense Matrix (for tests and
// debugging).
func (c *CyclicSPD) Dense() *Matrix {
	m := NewMatrix(c.n, c.n)
	for i := 0; i < c.n; i++ {
		m.Add(i, i, c.Diag[i])
		j := (i + 1) % c.n
		m.Add(i, j, c.Off[i])
		m.Add(j, i, c.Off[i])
	}
	return m
}

// MaxDiag returns the largest |Diag[i]| (at least 1), the scale a ridge
// retry should be proportionate to.
func (c *CyclicSPD) MaxDiag() float64 {
	m := 1.0
	for _, v := range c.Diag[:c.n] {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
