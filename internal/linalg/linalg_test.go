package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func vecAlmostEqual(a, b Vector, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol*(1+math.Abs(b[i])) {
			return false
		}
	}
	return true
}

func TestVectorArithmetic(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}

	sum, err := v.Add(w)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEqual(sum, Vector{5, 7, 9}, 0) {
		t.Errorf("Add = %v", sum)
	}

	diff, err := w.Sub(v)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEqual(diff, Vector{3, 3, 3}, 0) {
		t.Errorf("Sub = %v", diff)
	}

	if got := v.Scale(2); !vecAlmostEqual(got, Vector{2, 4, 6}, 0) {
		t.Errorf("Scale = %v", got)
	}

	dot, err := v.Dot(w)
	if err != nil || dot != 32 {
		t.Errorf("Dot = %g, %v; want 32", dot, err)
	}

	if err := v.AXPY(2, w); err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEqual(v, Vector{9, 12, 15}, 0) {
		t.Errorf("AXPY = %v", v)
	}
}

func TestVectorDimensionErrors(t *testing.T) {
	v := Vector{1, 2}
	w := Vector{1, 2, 3}
	if _, err := v.Add(w); err == nil {
		t.Error("Add mismatched: want error")
	}
	if _, err := v.Sub(w); err == nil {
		t.Error("Sub mismatched: want error")
	}
	if _, err := v.Dot(w); err == nil {
		t.Error("Dot mismatched: want error")
	}
	if err := v.AXPY(1, w); err == nil {
		t.Error("AXPY mismatched: want error")
	}
}

func TestVectorNorms(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Norm2(); math.Abs(got-5) > 1e-14 {
		t.Errorf("Norm2 = %g, want 5", got)
	}
	if got := v.NormInf(); got != 4 {
		t.Errorf("NormInf = %g, want 4", got)
	}
	// Overflow safety: components near max float still give finite norm.
	big := Vector{1e308, 1e308}
	if got := big.Norm2(); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("Norm2 overflowed: %g", got)
	}
	var empty Vector
	if empty.Norm2() != 0 || empty.NormInf() != 0 {
		t.Error("empty vector norms must be 0")
	}
}

func TestVectorClone(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone aliases underlying array")
	}
}

func TestMatrixBasicOps(t *testing.T) {
	m, err := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 2 || m.Cols() != 2 || m.At(1, 0) != 3 {
		t.Error("matrix accessors broken")
	}
	mv, err := m.MulVec(Vector{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEqual(mv, Vector{3, 7}, 0) {
		t.Errorf("MulVec = %v", mv)
	}
	mt := m.Transpose()
	if mt.At(0, 1) != 3 {
		t.Errorf("Transpose[0,1] = %g, want 3", mt.At(0, 1))
	}
	prod, err := m.Mul(Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if prod.At(i, j) != m.At(i, j) {
				t.Error("M·I != M")
			}
		}
	}
}

func TestMatrixMulKnown(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d,%d] = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMatrixDimensionErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := a.MulVec(Vector{1, 2}); err == nil {
		t.Error("MulVec mismatched: want error")
	}
	if _, err := a.Mul(NewMatrix(2, 2)); err == nil {
		t.Error("Mul mismatched: want error")
	}
	if _, err := NewMatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows: want error")
	}
	if _, err := NewMatrixFromRows(nil); err == nil {
		t.Error("empty rows: want error")
	}
	if _, err := a.Cholesky(); err == nil {
		t.Error("non-square Cholesky: want error")
	}
	if _, _, err := a.LU(); err == nil {
		t.Error("non-square LU: want error")
	}
}

func TestCholeskyKnownFactor(t *testing.T) {
	// A = L₀L₀ᵀ with L₀ = [[2,0],[1,3]] → A = [[4,2],[2,10]].
	a, _ := NewMatrixFromRows([][]float64{{4, 2}, {2, 10}})
	l, err := a.Cholesky()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{2, 0}, {1, 3}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if math.Abs(l.At(i, j)-want[i][j]) > 1e-14 {
				t.Errorf("L[%d,%d] = %g, want %g", i, j, l.At(i, j), want[i][j])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, −1
	if _, err := a.Cholesky(); err == nil {
		t.Error("indefinite matrix: want error")
	}
	z := NewMatrix(2, 2) // zero matrix
	if _, err := z.Cholesky(); err == nil {
		t.Error("zero matrix: want error")
	}
}

// Property: L·Lᵀ reconstructs random SPD matrices A = MᵀM + n·I.
func TestCholeskyReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		a, err := m.Transpose().Mul(m)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		l, err := a.Cholesky()
		if err != nil {
			return false
		}
		back, err := l.Mul(l.Transpose())
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(back.At(i, j)-a.At(i, j)) > 1e-9*(1+math.Abs(a.At(i, j))) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSolveCholeskyKnownSystem(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{4, 2}, {2, 10}})
	x, err := a.SolveCholesky(Vector{10, 32})
	if err != nil {
		t.Fatal(err)
	}
	// 4x + 2y = 10, 2x + 10y = 32 → x = 1, y = 3.
	if !vecAlmostEqual(x, Vector{1, 3}, 1e-12) {
		t.Errorf("SolveCholesky = %v, want [1 3]", x)
	}
}

// Property: SolveCholesky and SolveLU agree on random SPD systems.
func TestSolversAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		m := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		a, err := m.Transpose().Mul(m)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		b := make(Vector, n)
		for i := range b {
			b[i] = rng.NormFloat64() * 10
		}
		x1, err := a.SolveCholesky(b)
		if err != nil {
			return false
		}
		x2, err := a.SolveLU(b)
		if err != nil {
			return false
		}
		return vecAlmostEqual(x1, x2, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSolveLUWithPivoting(t *testing.T) {
	// Zero on the initial pivot forces a row swap.
	a, _ := NewMatrixFromRows([][]float64{{0, 1}, {1, 0}})
	x, err := a.SolveLU(Vector{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEqual(x, Vector{3, 2}, 1e-14) {
		t.Errorf("SolveLU = %v, want [3 2]", x)
	}
}

func TestSolveLUSingular(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := a.SolveLU(Vector{1, 2}); err == nil {
		t.Error("singular matrix: want error")
	}
}

// Property: LU solve residual ‖Ax − b‖ is tiny on random well-conditioned
// systems.
func TestSolveLUResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(2*n)) // diagonal dominance
		}
		b := make(Vector, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := a.SolveLU(b)
		if err != nil {
			return false
		}
		ax, err := a.MulVec(x)
		if err != nil {
			return false
		}
		r, err := ax.Sub(b)
		if err != nil {
			return false
		}
		return r.NormInf() < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTriangularSolves(t *testing.T) {
	l, _ := NewMatrixFromRows([][]float64{{2, 0}, {1, 3}})
	y, err := l.ForwardSolve(Vector{4, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEqual(y, Vector{2, 5.0 / 3}, 1e-14) {
		t.Errorf("ForwardSolve = %v", y)
	}
	u, _ := NewMatrixFromRows([][]float64{{2, 1}, {0, 3}})
	x, err := u.BackwardSolve(Vector{7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEqual(x, Vector{2, 3}, 1e-14) {
		t.Errorf("BackwardSolve = %v", x)
	}

	sing := NewMatrix(2, 2)
	if _, err := sing.ForwardSolve(Vector{1, 1}); err == nil {
		t.Error("zero diagonal forward: want error")
	}
	if _, err := sing.BackwardSolve(Vector{1, 1}); err == nil {
		t.Error("zero diagonal backward: want error")
	}
}

func TestMatrixString(t *testing.T) {
	m := Identity(2)
	if s := m.String(); len(s) == 0 {
		t.Error("String() empty")
	}
}
