package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomCyclicSPD builds a random diagonally dominant cyclic tridiagonal
// matrix (hence SPD) of order n.
func randomCyclicSPD(rng *rand.Rand, n int) *CyclicSPD {
	c := &CyclicSPD{}
	c.Reset(n)
	for i := 0; i < n; i++ {
		c.Off[i] = -1 + 2*rng.Float64()
	}
	for i := 0; i < n; i++ {
		// Strict diagonal dominance over the two incident couplings.
		c.Diag[i] = math.Abs(c.Off[i]) + math.Abs(c.Off[(i-1+n)%n]) + 0.1 + rng.Float64()
	}
	return c
}

func TestCyclicSPDSolveMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 3, 4, 5, 8, 16, 33} {
		for trial := 0; trial < 50; trial++ {
			c := randomCyclicSPD(rng, n)
			b := make([]float64, n)
			for i := range b {
				b[i] = -5 + 10*rng.Float64()
			}
			if err := c.Factor(); err != nil {
				t.Fatalf("n=%d trial %d: factor: %v", n, trial, err)
			}
			x := make([]float64, n)
			if err := c.Solve(b, x); err != nil {
				t.Fatal(err)
			}
			want, err := c.Dense().SolveCholesky(b)
			if err != nil {
				t.Fatalf("n=%d trial %d: dense: %v", n, trial, err)
			}
			for i := range x {
				if math.Abs(x[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					t.Fatalf("n=%d trial %d: x[%d] = %g, dense %g", n, trial, i, x[i], want[i])
				}
			}
			// Residual check through the coefficients themselves.
			y := make([]float64, n)
			if err := c.MulVec(x, y); err != nil {
				t.Fatal(err)
			}
			for i := range y {
				if math.Abs(y[i]-b[i]) > 1e-8*(1+math.Abs(b[i])) {
					t.Fatalf("n=%d trial %d: residual %g at %d", n, trial, y[i]-b[i], i)
				}
			}
		}
	}
}

func TestCyclicSPDSolveInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomCyclicSPD(rng, 6)
	b := []float64{1, -2, 3, -4, 5, -6}
	if err := c.Factor(); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 6)
	if err := c.Solve(b, x); err != nil {
		t.Fatal(err)
	}
	inPlace := append([]float64(nil), b...)
	if err := c.Solve(inPlace, inPlace); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != inPlace[i] {
			t.Fatalf("in-place solve diverges at %d: %g vs %g", i, inPlace[i], x[i])
		}
	}
}

func TestCyclicSPDNotPositiveDefinite(t *testing.T) {
	c := &CyclicSPD{}
	c.Reset(3)
	c.Diag[0], c.Diag[1], c.Diag[2] = 1, 1, 1
	c.Off[0], c.Off[1], c.Off[2] = 2, 0, 0 // |off| > diag → indefinite
	if err := c.Factor(); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("Factor = %v, want ErrNotPositiveDefinite", err)
	}
	// A proportionate ridge restores the factorization, Diag untouched.
	if err := c.FactorRidged(4); err != nil {
		t.Fatalf("FactorRidged: %v", err)
	}
	if c.Diag[0] != 1 {
		t.Fatalf("FactorRidged mutated Diag: %g", c.Diag[0])
	}
}

func TestCyclicSPDFactorSolveAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := randomCyclicSPD(rng, 12)
	b := make([]float64, 12)
	x := make([]float64, 12)
	for i := range b {
		b[i] = rng.Float64()
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.Reset(12)
		for i := 0; i < 12; i++ {
			c.Diag[i] = 3 + float64(i)
			c.Off[i] = -0.5
		}
		if err := c.Factor(); err != nil {
			t.Fatal(err)
		}
		if err := c.Solve(b, x); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("factor+solve allocates %.0f/iter, want 0", allocs)
	}
}

func TestVectorInPlaceOps(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if err := v.CopyFrom(w); err != nil {
		t.Fatal(err)
	}
	if v[0] != 4 || v[2] != 6 {
		t.Fatalf("CopyFrom: %v", v)
	}
	v.Zero()
	if v[0] != 0 || v[2] != 0 {
		t.Fatalf("Zero: %v", v)
	}
	if err := v.CopyFrom(Vector{1}); err == nil {
		t.Fatal("CopyFrom accepted mismatched lengths")
	}
	m := NewMatrix(2, 2)
	m.Set(0, 0, 7)
	b := m.Clone()
	m.Zero()
	if m.At(0, 0) != 0 {
		t.Fatal("Matrix.Zero left data")
	}
	if err := m.CopyFrom(b); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 7 {
		t.Fatal("Matrix.CopyFrom lost data")
	}
	if err := m.CopyFrom(NewMatrix(3, 3)); err == nil {
		t.Fatal("Matrix.CopyFrom accepted mismatched shapes")
	}
}
