package convexopt

import (
	"math"
	"math/rand"
	"testing"

	"arbloop/internal/linalg"
)

// randomLoopProblem builds a random profitable arbitrage loop of length
// n: per-hop reserves log-uniform over several decades, fees from the
// realistic set, and a price product nudged above 1 by scaling one
// hop's output reserve.
func randomLoopProblem(rng *rand.Rand, n int) *LoopProblem {
	p := &LoopProblem{}
	p.Reset(n)
	fees := []float64{0, 0.001, 0.003, 0.01, 0.03}
	for {
		prod := 1.0
		for i := 0; i < n; i++ {
			p.Gamma[i] = 1 - fees[rng.Intn(len(fees))]
			p.RIn[i] = math.Pow(10, 3+3*rng.Float64())
			p.ROut[i] = math.Pow(10, 3+3*rng.Float64())
			prod *= p.Gamma[i] * p.ROut[i] / p.RIn[i]
		}
		// Make the loop clearly profitable: scale hop 0's output reserve
		// so the spot-price product lands in [1.05, 2].
		target := 1.05 + 0.95*rng.Float64()
		p.ROut[0] *= target / prod
		// Consistent prices: hop i's output token is hop i+1's input
		// token, so PIn[(i+1)%n] must equal POut[i].
		p.PIn[0] = math.Pow(10, -1+4*rng.Float64())
		for i := 0; i < n; i++ {
			p.POut[i] = math.Pow(10, -1+4*rng.Float64())
			p.PIn[(i+1)%n] = p.POut[i]
		}
		p.POut[n-1] = p.PIn[0]
		return p
	}
}

// interiorStart finds a strictly feasible start by shrinking the
// single-rotation closed-form optimum, mirroring the strategy package's
// warm start.
func interiorStart(t *testing.T, p *LoopProblem) []float64 {
	t.Helper()
	n := p.N()
	// Compose the Möbius maps F(Δ) = AΔ/(B + CΔ) along the loop.
	A, B, C := 1.0, 1.0, 0.0
	for i := 0; i < n; i++ {
		a2, b2, c2 := p.Gamma[i]*p.ROut[i], p.RIn[i], p.Gamma[i]
		A, B, C = a2*A, B*b2, b2*C+c2*A
	}
	if A <= B {
		t.Fatal("random loop is not profitable")
	}
	delta := (math.Sqrt(A*B) - B) / C
	// Walk the exact plan at the closed-form optimum, then shrink the
	// whole vector uniformly: F strictly concave with F(0) = 0 gives
	// F(c·a) > c·F(a), so every flow constraint turns strictly slack.
	base := make([]float64, n)
	amt := delta
	for i := 0; i < n; i++ {
		base[i] = amt
		amt = p.F(i, amt)
	}
	x := make([]float64, n)
	for _, eta := range []float64{0.05, 0.15, 0.4, 0.75} {
		for i := 0; i < n; i++ {
			x[i] = base[i] * (1 - eta)
		}
		if p.Interior(x) {
			return x
		}
	}
	t.Fatal("no interior start for random loop")
	return nil
}

// TestSolveLoopMatchesGenericMinimize is the core equivalence property:
// the structured O(n) solver and the generic dense barrier solver agree
// on plan vectors and objective to solver tolerance, across random
// profitable loops of length 2–6, and the structured solution satisfies
// the KKT residuals of the generic formulation.
func TestSolveLoopMatchesGenericMinimize(t *testing.T) {
	rng := rand.New(rand.NewSource(20240728))
	opts := Options{MaxNewton: 300}
	for n := 2; n <= 6; n++ {
		for trial := 0; trial < 12; trial++ {
			p := randomLoopProblem(rng, n)
			x0 := interiorStart(t, p)

			ws := &LoopWorkspace{}
			fast, err := SolveLoop(p, x0, opts, ws)
			if err != nil {
				t.Fatalf("n=%d trial %d: SolveLoop: %v", n, trial, err)
			}
			// Converged means the absolute gap tolerance was met; at large
			// objective scales centering stalls at float64 resolution
			// first, so require a gap that is small relative to the
			// objective instead. An infinite gap (no centering certified
			// a bound — the rare boundary-creep exhaustion) skips the
			// gap-dependent checks but still must match the reference.
			certified := !math.IsInf(fast.GapBound, 1)
			if certified && fast.GapBound > 1e-6*(1+math.Abs(fast.Objective)) {
				t.Fatalf("n=%d trial %d: structured gap bound %g at objective %g",
					n, trial, fast.GapBound, fast.Objective)
			}
			gen, err := Minimize(p.Generic(), linalg.Vector(x0), opts)
			if err != nil {
				t.Fatalf("n=%d trial %d: Minimize: %v", n, trial, err)
			}

			// Objective agreement relative to the problem's scale.
			scale := 1 + math.Abs(gen.Objective)
			if d := math.Abs(fast.Objective - gen.Objective); d > 1e-6*scale {
				t.Errorf("n=%d trial %d: objective structured %.12g vs generic %.12g (Δ %g)",
					n, trial, fast.Objective, gen.Objective, d)
			}
			// Plan vectors agree hop for hop.
			for i := 0; i < n; i++ {
				if d := math.Abs(fast.X[i] - gen.X[i]); d > 1e-6*(1+math.Abs(gen.X[i])) {
					t.Errorf("n=%d trial %d: x[%d] structured %.12g vs generic %.12g",
						n, trial, i, fast.X[i], gen.X[i])
				}
			}

			if !certified {
				continue
			}
			// KKT residuals of the structured solution through the generic
			// formulation, at the structured solve's final barrier
			// parameter. Stationarity is measured against the objective
			// gradient's magnitude; the 5e-3 factor reflects the Newton
			// decrement tolerance amplified by the barrier Hessian's
			// 1/slack² conditioning at near-active constraints (worse for
			// longer loops, which carry more near-active constraints).
			gp := p.Generic()
			grad := linalg.NewVector(n)
			gp.Gradient(linalg.Vector(fast.X), grad)
			gscale := 1 + grad.NormInf()
			stat, comp, err := KKTResiduals(gp, linalg.Vector(fast.X), fast.TBarrier)
			if err != nil {
				t.Fatalf("n=%d trial %d: KKTResiduals: %v", n, trial, err)
			}
			if stat > 5e-3*gscale {
				t.Errorf("n=%d trial %d: stationarity residual %g (scale %g)", n, trial, stat, gscale)
			}
			if comp > 1.1/fast.TBarrier {
				t.Errorf("n=%d trial %d: complementarity %g exceeds 1/t = %g", n, trial, comp, 1/fast.TBarrier)
			}
		}
	}
}

// TestSolveLoopInfeasibleStart rejects boundary and exterior points.
func TestSolveLoopInfeasibleStart(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomLoopProblem(rng, 3)
	for _, x0 := range [][]float64{
		{0, 0, 0},          // boundary
		{-1, 1, 1},         // negative input
		{1e30, 1e30, 1e30}, // flow constraints violated
		make([]float64, 2), // wrong dimension
	} {
		if _, err := SolveLoop(p, x0, Options{}, &LoopWorkspace{}); err == nil {
			t.Errorf("SolveLoop accepted start %v", x0)
		}
	}
}

// TestSolveLoopAllocFree pins the fast path's allocation budget: after
// the first solve warms the workspace, a solve touches the allocator
// zero times.
func TestSolveLoopAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := randomLoopProblem(rng, 4)
	x0 := interiorStart(t, p)
	ws := &LoopWorkspace{}
	opts := Options{MaxNewton: 300}
	if _, err := SolveLoop(p, x0, opts, ws); err != nil { // warm up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := SolveLoop(p, x0, opts, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm SolveLoop allocates %.0f/solve, want 0", allocs)
	}
}

// TestSolveLoopWorkspaceReuseAcrossOrders: one workspace serves solves
// of different loop lengths back to back.
func TestSolveLoopWorkspaceReuseAcrossOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ws := &LoopWorkspace{}
	for _, n := range []int{5, 2, 6, 3} {
		p := randomLoopProblem(rng, n)
		x0 := interiorStart(t, p)
		res, err := SolveLoop(p, x0, Options{MaxNewton: 300}, ws)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(res.X) != n {
			t.Fatalf("n=%d: result has %d entries", n, len(res.X))
		}
		if !p.Interior(res.X) && res.Objective >= 0 {
			t.Fatalf("n=%d: non-interior non-improving result", n)
		}
	}
}
