package convexopt

import (
	"errors"
	"testing"

	"arbloop/internal/linalg"
)

func TestFindFeasibleBox(t *testing.T) {
	// Feasible set: 2 ≤ x ≤ 5; start far outside.
	p := Problem{
		N:         1,
		Objective: func(x linalg.Vector) float64 { return 0 },
		Gradient:  func(x linalg.Vector, g linalg.Vector) {},
		Constraints: []Constraint{
			{
				Value:    func(x linalg.Vector) float64 { return 2 - x[0] },
				Gradient: func(x linalg.Vector, g linalg.Vector) { g[0] = -1 },
			},
			{
				Value:    func(x linalg.Vector) float64 { return x[0] - 5 },
				Gradient: func(x linalg.Vector, g linalg.Vector) { g[0] = 1 },
			},
		},
	}
	x, err := FindFeasible(p, linalg.Vector{100}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] <= 2 || x[0] >= 5 {
		t.Errorf("phase I returned %g outside (2, 5)", x[0])
	}
}

func TestFindFeasibleNonlinear(t *testing.T) {
	// Feasible set: unit disk intersected with x+y ≥ 1 (non-empty interior).
	p := Problem{
		N:         2,
		Objective: func(x linalg.Vector) float64 { return 0 },
		Gradient:  func(x linalg.Vector, g linalg.Vector) {},
		Constraints: []Constraint{
			{
				Value:    func(v linalg.Vector) float64 { return v[0]*v[0] + v[1]*v[1] - 1 },
				Gradient: func(v linalg.Vector, g linalg.Vector) { g[0], g[1] = 2*v[0], 2*v[1] },
				Hessian: func(v linalg.Vector, h *linalg.Matrix) {
					h.Add(0, 0, 2)
					h.Add(1, 1, 2)
				},
			},
			{
				Value:    func(v linalg.Vector) float64 { return 1 - v[0] - v[1] },
				Gradient: func(v linalg.Vector, g linalg.Vector) { g[0], g[1] = -1, -1 },
			},
		},
	}
	x, err := FindFeasible(p, linalg.Vector{-3, 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if x[0]*x[0]+x[1]*x[1] >= 1 || x[0]+x[1] <= 1 {
		t.Errorf("phase I point %v not strictly feasible", x)
	}
}

func TestFindFeasibleInfeasibleProblem(t *testing.T) {
	// x ≤ −1 and x ≥ 1 simultaneously: empty set.
	p := Problem{
		N:         1,
		Objective: func(x linalg.Vector) float64 { return 0 },
		Gradient:  func(x linalg.Vector, g linalg.Vector) {},
		Constraints: []Constraint{
			{
				Value:    func(x linalg.Vector) float64 { return x[0] + 1 },
				Gradient: func(x linalg.Vector, g linalg.Vector) { g[0] = 1 },
			},
			{
				Value:    func(x linalg.Vector) float64 { return 1 - x[0] },
				Gradient: func(x linalg.Vector, g linalg.Vector) { g[0] = -1 },
			},
		},
	}
	if _, err := FindFeasible(p, linalg.Vector{0}, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("infeasible problem error = %v, want ErrInfeasible", err)
	}
}

func TestFindFeasibleUnconstrained(t *testing.T) {
	p := Problem{
		N:         2,
		Objective: func(x linalg.Vector) float64 { return 0 },
		Gradient:  func(x linalg.Vector, g linalg.Vector) {},
	}
	x, err := FindFeasible(p, linalg.Vector{3, 4}, Options{})
	if err != nil || x[0] != 3 || x[1] != 4 {
		t.Errorf("unconstrained phase I = %v, %v", x, err)
	}
}

func TestFindFeasibleDimensionMismatch(t *testing.T) {
	p := quadratic1D()
	if _, err := FindFeasible(p, linalg.Vector{1, 2}, Options{}); err == nil {
		t.Error("dimension mismatch: want error")
	}
}

func TestFindFeasibleFeedsMinimize(t *testing.T) {
	// End-to-end: phase I from an infeasible start, then phase II.
	p := quadratic1D()
	x0, err := FindFeasible(p, linalg.Vector{50}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Minimize(p, x0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.X[0] - 3; d > 1e-5 || d < -1e-5 {
		t.Errorf("phase II optimum = %g, want 3", res.X[0])
	}
}
