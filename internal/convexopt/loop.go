// Structure-exploiting fast path for the reduced arbitrage-loop problem
// (paper problem (8), per-hop-input form):
//
//	minimize    −Σ_i [ POut_i·F_i(x_i) − PIn_i·x_i ]
//	subject to  x_{i+1 mod n} − F_i(x_i) ≤ 0     (flow / no-shorting)
//	            −x_i ≤ 0                          (non-negativity)
//
// where every hop is a fee-adjusted CPMM curve, a Möbius map with
// closed-form value and derivatives:
//
//	F_i(x)  =  γ·r_out·x / (r_in + γ·x)
//	F_i′(x) =  γ·r_in·r_out / (r_in + γ·x)²
//	F_i″(x) = −2γ²·r_in·r_out / (r_in + γ·x)³
//
// The generic barrier solver (Minimize) treats this program as a black
// box: 2n closure-based constraints, a dense Hessian, and an O(n³)
// Cholesky per Newton step. But the structure is fixed and small: the
// objective Hessian is diagonal, flow constraint i couples only
// variables i and i+1, so the barrier Hessian is cyclic tridiagonal
// (linalg.CyclicSPD) and one Newton step costs O(n) with zero
// allocations. SolveLoop runs the same damped-Newton log-barrier
// iteration as Minimize — same schedule, same stopping rules, same
// suboptimality bound m/t with m = 2n — against the analytic curves.
// Minimize remains the reference implementation; the two agree to
// solver tolerance (property-tested in loop_test.go).
package convexopt

import (
	"errors"
	"fmt"
	"math"

	"arbloop/internal/linalg"
)

// Constant-message Newton failures, hoisted to package scope so the
// annotated solve loop constructs no error values on the hot path.
var (
	errBarrierUndefined   = errors.New("convexopt: loop barrier undefined at interior point")
	errNewtonDecrementNaN = errors.New("convexopt: loop newton decrement is NaN")
)

// LoopProblem is the reduced problem (8) over one arbitrage loop of n
// CPMM hops, stored as flat per-hop coefficient slices (index = hop).
// No closures, no interfaces, no error-wrapped curve evaluations — the
// Newton hot loop reads these arrays directly.
type LoopProblem struct {
	// Gamma, RIn, ROut are each hop's fee multiplier γ = 1 − fee and
	// oriented reserves.
	Gamma, RIn, ROut []float64
	// POut and PIn are the CEX prices of each hop's output and input
	// token.
	POut, PIn []float64
}

// N returns the hop count.
func (p *LoopProblem) N() int { return len(p.Gamma) }

// Reset prepares the problem for n hops (n ≥ 2), reusing slice capacity.
// Coefficients are left unspecified; the caller fills every entry.
func (p *LoopProblem) Reset(n int) {
	if n < 2 {
		panic(fmt.Sprintf("convexopt: loop problem needs >= 2 hops, got %d", n))
	}
	p.Gamma = resizeFloats(p.Gamma, n)
	p.RIn = resizeFloats(p.RIn, n)
	p.ROut = resizeFloats(p.ROut, n)
	p.POut = resizeFloats(p.POut, n)
	p.PIn = resizeFloats(p.PIn, n)
}

func resizeFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// F evaluates hop i's swap curve at input a ≥ 0.
func (p *LoopProblem) F(i int, a float64) float64 {
	return p.Gamma[i] * p.ROut[i] * a / (p.RIn[i] + p.Gamma[i]*a)
}

// DF evaluates F_i′(a).
func (p *LoopProblem) DF(i int, a float64) float64 {
	den := p.RIn[i] + p.Gamma[i]*a
	return p.Gamma[i] * p.RIn[i] * p.ROut[i] / (den * den)
}

// D2F evaluates F_i″(a) (< 0: the curve is strictly concave).
func (p *LoopProblem) D2F(i int, a float64) float64 {
	g := p.Gamma[i]
	den := p.RIn[i] + g*a
	return -2 * g * g * p.RIn[i] * p.ROut[i] / (den * den * den)
}

// Objective evaluates the minimization objective −Σ(POut·F − PIn·x).
func (p *LoopProblem) Objective(x []float64) float64 {
	s := 0.0
	for i := range p.Gamma {
		s += p.POut[i]*p.F(i, x[i]) - p.PIn[i]*x[i]
	}
	return -s
}

// Interior reports whether x is strictly feasible: every input positive
// and every flow constraint strictly slack.
func (p *LoopProblem) Interior(x []float64) bool {
	n := p.N()
	if len(x) != n {
		return false
	}
	for i := 0; i < n; i++ {
		if !(x[i] > 0) {
			return false
		}
		if !(p.F(i, x[i])-x[(i+1)%n] > 0) {
			return false
		}
	}
	return true
}

// Generic expands the loop problem into the closure-based Problem the
// reference solver (Minimize) and the KKT diagnostics consume. The
// constraint order matches SolveLoop's barrier: n flow constraints, then
// n non-negativity constraints.
func (p *LoopProblem) Generic() Problem {
	n := p.N()
	prob := Problem{
		N:         n,
		Objective: func(x linalg.Vector) float64 { return p.Objective(x) },
		Gradient: func(x linalg.Vector, g linalg.Vector) {
			for i := 0; i < n; i++ {
				g[i] = -(p.POut[i]*p.DF(i, x[i]) - p.PIn[i])
			}
		},
		Hessian: func(x linalg.Vector, h *linalg.Matrix) {
			for i := 0; i < n; i++ {
				h.Add(i, i, -p.POut[i]*p.D2F(i, x[i]))
			}
		},
	}
	for i := 0; i < n; i++ {
		i := i
		next := (i + 1) % n
		prob.Constraints = append(prob.Constraints, Constraint{
			Value: func(x linalg.Vector) float64 { return x[next] - p.F(i, x[i]) },
			Gradient: func(x linalg.Vector, g linalg.Vector) {
				g[next] += 1
				g[i] += -p.DF(i, x[i])
			},
			Hessian: func(x linalg.Vector, h *linalg.Matrix) {
				h.Add(i, i, -p.D2F(i, x[i]))
			},
		})
	}
	for i := 0; i < n; i++ {
		i := i
		prob.Constraints = append(prob.Constraints, Constraint{
			Value:    func(x linalg.Vector) float64 { return -x[i] },
			Gradient: func(x linalg.Vector, g linalg.Vector) { g[i] += -1 },
		})
	}
	return prob
}

// LoopWorkspace carries every slice SolveLoop needs across calls: the
// iterate, the candidate, gradient, Newton step, and the cyclic Hessian.
// After the first solve of a given order, a solve performs no
// allocations. A workspace serves one solve at a time.
type LoopWorkspace struct {
	x, cand, grad, step []float64
	// xcent snapshots the iterate after each completed centering — the
	// rollback target when a later centering stalls at float64
	// resolution, so the reported gap bound m/t always describes the
	// returned point.
	xcent []float64
	cyc   linalg.CyclicSPD
}

func (w *LoopWorkspace) reset(n int) {
	w.x = resizeFloats(w.x, n)
	w.cand = resizeFloats(w.cand, n)
	w.grad = resizeFloats(w.grad, n)
	w.step = resizeFloats(w.step, n)
	w.xcent = resizeFloats(w.xcent, n)
}

// LoopResult reports a SolveLoop outcome. X aliases the workspace's
// iterate — copy it out before reusing the workspace.
type LoopResult struct {
	// X is the final iterate (workspace-owned).
	X []float64
	// Objective is the minimization objective at X.
	Objective float64
	// GapBound is the final duality-gap bound m/t (m = 2n).
	GapBound float64
	// TBarrier is the final barrier parameter, for KKT diagnostics.
	TBarrier float64
	// OuterIters and NewtonIters count barrier and Newton steps taken.
	OuterIters, NewtonIters int
	// Converged reports whether GapBound ≤ Tol was reached.
	Converged bool
}

// validateLoopStart checks SolveLoop's preconditions. Kept out of the
// annotated solver body so its fmt error construction stays off the
// hot path.
func validateLoopStart(p *LoopProblem, x0 []float64) error {
	n := p.N()
	if n < 2 {
		return fmt.Errorf("%w: loop needs >= 2 hops", ErrBadProblem)
	}
	if len(x0) != n {
		return fmt.Errorf("%w: x0 has %d entries, want %d", ErrDimension, len(x0), n)
	}
	if !p.Interior(x0) {
		return fmt.Errorf("%w: loop start point", ErrInfeasibleStart)
	}
	return nil
}

// wrapNewtonErr attributes a cyclic Newton-system failure. Cold by
// construction: newtonStepCyclic has already retried the factorization
// with escalating ridges before reporting an error.
func wrapNewtonErr(err error) error {
	return fmt.Errorf("convexopt: loop newton system: %w", err)
}

// SolveLoop runs the log-barrier method on the loop problem from the
// strictly feasible point x0, mirroring Minimize step for step but with
// analytic curve evaluation and the O(n) cyclic Newton solve. ws is
// reused across calls; pass a fresh &LoopWorkspace{} the first time.
//
// SolveLoop is the per-loop inner solver of every scan; after workspace
// warm-up its body must stay allocation-free (checked by arblint's
// hotpath analyzer).
//
//arblint:hotpath
func SolveLoop(p *LoopProblem, x0 []float64, opts Options, ws *LoopWorkspace) (LoopResult, error) {
	n := p.N()
	if err := validateLoopStart(p, x0); err != nil {
		return LoopResult{}, err
	}
	opts = opts.withDefaults()

	ws.reset(n)
	copy(ws.x, x0)
	m := float64(2 * n)
	t := initialT(opts.T0, m, p.Objective(x0))
	// GapBound stays +Inf until the first completed centering certifies
	// a bound.
	res := LoopResult{GapBound: math.Inf(1)}

	haveCenter := false
	for outer := 0; outer < opts.MaxOuter; outer++ {
		res.OuterIters++

		// centered reports whether this t's centering reached the
		// Newton-decrement criterion. A centering that instead hits
		// float64 resolution (failed line search, stagnation, norm-phase
		// stall, iteration cap) leaves the iterate between central
		// points, where the m/t gap bound does not hold — the solve then
		// rolls back to the last completed centering and stops.
		centered := false
		stagnant := 0
		for inner := 0; inner < opts.MaxNewton; inner++ {
			phi, ok := p.evalBarrier(ws.x, t, ws.grad, &ws.cyc)
			if !ok {
				return res, errBarrierUndefined
			}

			if err := p.newtonStepCyclic(ws); err != nil {
				return res, wrapNewtonErr(err)
			}
			lambda2 := 0.0
			for i := 0; i < n; i++ {
				lambda2 -= ws.grad[i] * ws.step[i] // step = −H⁻¹∇φ ⇒ ∇φᵀstep = −λ²
			}
			if lambda2/2 <= opts.NewtonTol {
				centered = true
				break
			}
			if math.IsNaN(lambda2) {
				return res, errNewtonDecrementNaN
			}
			res.NewtonIters++

			// Backtracking line search keeping strict feasibility.
			const alpha, beta = 0.25, 0.5
			s := 1.0
			improved := false
			achieved := 0.0
			for ls := 0; ls < 60; ls++ {
				for i := 0; i < n; i++ {
					ws.cand[i] = ws.x[i] + s*ws.step[i]
				}
				if !p.Interior(ws.cand) {
					s *= beta
					continue
				}
				candPhi := p.barrierValue(ws.cand, t)
				if math.IsNaN(candPhi) || candPhi > phi-alpha*s*lambda2 {
					s *= beta
					continue
				}
				ws.x, ws.cand = ws.cand, ws.x
				improved = true
				achieved = phi - candPhi
				break
			}
			if improved && achieved > 1e-10*(1+math.Abs(phi)) {
				stagnant = 0
				continue
			}
			if improved {
				// Negligible decrease; a few in a row mean φ-certified
				// progress has hit float64 resolution.
				stagnant++
				if stagnant < 3 {
					continue
				}
			}
			// φ-certified progress is below float64 resolution (the t·f
			// term swamps representable decreases at large t). Switch to
			// the norm phase: accept Newton steps on Newton-decrement
			// reduction instead, which is immune to the cancellation.
			var err error
			centered, err = p.normPhase(t, opts, ws)
			if err != nil {
				return res, err
			}
			break
		}

		if !centered {
			if haveCenter {
				copy(ws.x, ws.xcent)
			}
			break
		}
		res.GapBound = m / t
		res.TBarrier = t
		copy(ws.xcent, ws.x)
		haveCenter = true
		if res.GapBound <= opts.Tol {
			res.Converged = true
			break
		}
		t *= opts.Mu
	}

	res.X = ws.x
	res.Objective = p.Objective(ws.x)
	return res, nil
}

// logProd accumulates Σ log(v_i) as a running product with one final
// log: math.Log dominates the barrier evaluation profile, and one call
// per φ replaces 2n. Frexp renormalization keeps the product in range
// for any loop length.
type logProd struct {
	mant float64
	exp  int
}

func (lp *logProd) init() { lp.mant, lp.exp = 1, 0 }

func (lp *logProd) mul(v float64) {
	lp.mant *= v
	if lp.mant > 1e150 || lp.mant < 1e-150 {
		frac, e := math.Frexp(lp.mant)
		lp.mant = frac
		lp.exp += e
	}
}

func (lp *logProd) log() float64 {
	return math.Log(lp.mant) + float64(lp.exp)*math.Ln2
}

// evalBarrier computes φ_t(x) = t·f(x) − Σ log(F_i(x_i) − x_{i+1}) −
// Σ log(x_i), filling grad and the cyclic Hessian. Returns ok=false
// when a log argument is non-positive.
func (p *LoopProblem) evalBarrier(x []float64, t float64, grad []float64, cyc *linalg.CyclicSPD) (float64, bool) {
	n := p.N()
	cyc.Reset(n)

	phi := 0.0
	var lp logProd
	lp.init()
	// Objective terms and non-negativity barriers first; flow barriers
	// fold in below (they need slack i for variables i and i+1).
	for i := 0; i < n; i++ {
		xi := x[i]
		if !(xi > 0) {
			return 0, false
		}
		df := p.DF(i, xi)
		phi += t * (p.PIn[i]*xi - p.POut[i]*p.F(i, xi))
		lp.mul(xi)
		grad[i] = t*(p.PIn[i]-p.POut[i]*df) - 1/xi
		cyc.Diag[i] = -t*p.POut[i]*p.D2F(i, xi) + 1/(xi*xi)
	}
	for i := 0; i < n; i++ {
		next := (i + 1) % n
		s := p.F(i, x[i]) - x[next]
		if !(s > 0) {
			return 0, false
		}
		lp.mul(s)
		df := p.DF(i, x[i])
		inv := 1 / s
		// ∇g = (−F′ at i, +1 at next); ∇φ += ∇g/s, ∇²φ += ∇g∇gᵀ/s² − ∇²g/s.
		grad[i] -= df * inv
		grad[next] += inv
		cyc.Diag[i] += df*df*inv*inv - p.D2F(i, x[i])*inv
		cyc.Diag[next] += inv * inv
		cyc.Off[i] += -df * inv * inv
	}
	return phi - lp.log(), true
}

// barrierValue computes φ_t(x) only; NaN when infeasible.
func (p *LoopProblem) barrierValue(x []float64, t float64) float64 {
	n := p.N()
	phi := 0.0
	var lp logProd
	lp.init()
	for i := 0; i < n; i++ {
		xi := x[i]
		s := p.F(i, xi) - x[(i+1)%n]
		if !(xi > 0) || !(s > 0) {
			return math.NaN()
		}
		phi += t * (p.PIn[i]*xi - p.POut[i]*p.F(i, xi))
		lp.mul(xi)
		lp.mul(s)
	}
	return phi - lp.log()
}

// normPhase finishes a centering whose φ-value line search hit float64
// resolution: near the central point the barrier value t·f(x) − Σ log(·)
// dwarfs the decreases a Newton step makes, so the Armijo test cannot
// certify progress even though the iterate is still converging. The norm
// phase instead accepts (feasibility-damped) Newton steps as long as the
// Newton decrement λ² keeps shrinking — a quantity computed from
// gradients, free of the cancellation — until the decrement criterion is
// met (centered) or λ² stops improving (genuinely stalled).
func (p *LoopProblem) normPhase(t float64, opts Options, ws *LoopWorkspace) (bool, error) {
	n := p.N()
	eval := func(x []float64) (float64, error) {
		if _, ok := p.evalBarrier(x, t, ws.grad, &ws.cyc); !ok {
			return 0, errBarrierUndefined
		}
		if err := p.newtonStepCyclic(ws); err != nil {
			return 0, err
		}
		l2 := 0.0
		for i := 0; i < n; i++ {
			l2 -= ws.grad[i] * ws.step[i]
		}
		return l2, nil
	}
	lambda2, err := eval(ws.x)
	if err != nil {
		return false, err
	}
	for iter := 0; iter < 40; iter++ {
		if lambda2/2 <= opts.NewtonTol {
			return true, nil
		}
		s := 1.0
		for ; s > 1e-12; s *= 0.5 {
			for i := 0; i < n; i++ {
				ws.cand[i] = ws.x[i] + s*ws.step[i]
			}
			if p.Interior(ws.cand) {
				break
			}
		}
		if s <= 1e-12 {
			return false, nil
		}
		l2, err := eval(ws.cand)
		if err != nil {
			return false, err
		}
		// Require genuine decrement reduction; NaN or growth means the
		// step left the quadratic basin and the phase must stop (ws.x is
		// untouched — grad/step are scratch).
		if !(l2 < 0.9*lambda2) {
			return false, nil
		}
		ws.x, ws.cand = ws.cand, ws.x
		lambda2 = l2
	}
	return false, nil
}

// newtonStepCyclic solves H·step = −∇φ through the cyclic factorization,
// adding a proportionate diagonal ridge when H is not numerically
// positive definite (near-active constraints push barrier terms many
// orders of magnitude above the rest of the Hessian).
func (p *LoopProblem) newtonStepCyclic(ws *LoopWorkspace) error {
	n := p.N()
	for i := 0; i < n; i++ {
		ws.step[i] = -ws.grad[i]
	}
	maxDiag := ws.cyc.MaxDiag()
	ridge := 0.0
	var err error
	for attempt := 0; attempt < 16; attempt++ {
		if err = ws.cyc.FactorRidged(ridge); err == nil {
			return ws.cyc.Solve(ws.step, ws.step)
		}
		if ridge == 0 {
			ridge = 1e-14 * maxDiag
		} else {
			ridge *= 100
		}
	}
	// Last resort: a full-scale ridge (gradient-like step). The matrix
	// H + maxDiag·I is far inside the positive definite cone; failure
	// here means the coefficients are NaN/Inf.
	if ferr := ws.cyc.FactorRidged(maxDiag); ferr != nil {
		return ferr
	}
	return ws.cyc.Solve(ws.step, ws.step)
}
