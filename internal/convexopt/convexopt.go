// Package convexopt implements a self-contained interior-point solver for
// smooth convex programs
//
//	minimize    f(x)
//	subject to  g_i(x) ≤ 0,  i = 1…m
//
// with twice-differentiable f and g_i, using the classic log-barrier
// path-following method (Boyd & Vandenberghe, ch. 11): for increasing t,
// minimize φ_t(x) = t·f(x) − Σ log(−g_i(x)) with damped Newton steps, each
// solved through a dense Cholesky factorization (package linalg). The
// suboptimality after the outer loop is bounded by m/t.
//
// The paper's ConvexOptimization strategy (problem (8)) is solved through
// this package; Go lacks a mature convex-optimization library, so the
// solver is hand-rolled (see DESIGN.md substitutions).
package convexopt

import (
	"errors"
	"fmt"
	"math"

	"arbloop/internal/linalg"
)

// Errors returned by the solver.
var (
	ErrInfeasibleStart = errors.New("convexopt: start point is not strictly feasible")
	ErrDimension       = errors.New("convexopt: dimension mismatch")
	ErrNoProgress      = errors.New("convexopt: line search failed to make progress")
	ErrBadProblem      = errors.New("convexopt: malformed problem")
)

// Constraint is one inequality g(x) ≤ 0.
type Constraint struct {
	// Value evaluates g(x). Feasibility requires g(x) < 0 strictly for
	// interior points.
	Value func(x linalg.Vector) float64
	// Gradient writes ∇g(x) into grad (len n, pre-zeroed by the solver).
	Gradient func(x linalg.Vector, grad linalg.Vector)
	// Hessian adds ∇²g(x) into h (n×n). Nil for affine constraints.
	Hessian func(x linalg.Vector, h *linalg.Matrix)
}

// Problem is a smooth convex minimization problem.
type Problem struct {
	// N is the number of variables.
	N int
	// Objective evaluates f(x).
	Objective func(x linalg.Vector) float64
	// Gradient writes ∇f(x) into grad (len n, pre-zeroed by the solver).
	Gradient func(x linalg.Vector, grad linalg.Vector)
	// Hessian adds ∇²f(x) into h (n×n, pre-zeroed by the solver). Nil for
	// affine objectives.
	Hessian func(x linalg.Vector, h *linalg.Matrix)
	// Constraints are the inequality constraints.
	Constraints []Constraint
}

// Options tune the barrier method. Zero values select defaults.
type Options struct {
	// Tol is the target duality-gap bound m/t (default 1e-9).
	Tol float64
	// T0 is the initial barrier parameter. Zero selects a scale-aware
	// default: m / (5% of |f(x0)|), capped at 1 — so the first
	// centering's gap bound is proportionate to the objective scale and
	// large-scale problems skip the boundary-creep phase a flat t=1
	// would suffer (Boyd & Vandenberghe §11.3.1).
	T0 float64
	// Mu is the barrier growth factor per outer iteration (default 20).
	Mu float64
	// NewtonTol stops the inner loop when the Newton decrement λ²/2 falls
	// below it (default 1e-10).
	NewtonTol float64
	// MaxNewton bounds inner iterations per outer step (default 100).
	MaxNewton int
	// MaxOuter bounds outer (centering) steps (default 100).
	MaxOuter int
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	// T0 <= 0 stays zero: the solvers derive the scale-aware default
	// from the start point (see initialT).
	if o.Mu <= 1 {
		o.Mu = 20
	}
	if o.NewtonTol <= 0 {
		o.NewtonTol = 1e-10
	}
	if o.MaxNewton <= 0 {
		o.MaxNewton = 100
	}
	if o.MaxOuter <= 0 {
		o.MaxOuter = 100
	}
	return o
}

// Result reports the solver outcome.
type Result struct {
	// X is the final iterate.
	X linalg.Vector
	// Objective is f(X).
	Objective float64
	// GapBound is the final duality-gap bound m/t.
	GapBound float64
	// OuterIters and NewtonIters count barrier and Newton steps taken.
	OuterIters, NewtonIters int
	// Converged reports whether GapBound ≤ Tol was reached.
	Converged bool
}

// Minimize runs the barrier method from the strictly feasible point x0.
func Minimize(p Problem, x0 linalg.Vector, opts Options) (Result, error) {
	if p.N <= 0 || p.Objective == nil || p.Gradient == nil {
		return Result{}, fmt.Errorf("%w: need N>0, Objective, Gradient", ErrBadProblem)
	}
	if len(x0) != p.N {
		return Result{}, fmt.Errorf("%w: x0 has %d entries, want %d", ErrDimension, len(x0), p.N)
	}
	for i, c := range p.Constraints {
		if c.Value == nil || c.Gradient == nil {
			return Result{}, fmt.Errorf("%w: constraint %d lacks Value/Gradient", ErrBadProblem, i)
		}
		if v := c.Value(x0); v >= 0 || math.IsNaN(v) {
			return Result{}, fmt.Errorf("%w: constraint %d value %g", ErrInfeasibleStart, i, v)
		}
	}
	opts = opts.withDefaults()

	x := x0.Clone()
	m := float64(len(p.Constraints))
	t := initialT(opts.T0, m, p.Objective(x0))
	// GapBound stays +Inf until the first completed centering certifies a
	// bound (0 for unconstrained problems, which have no gap).
	res := Result{}
	if m > 0 {
		res.GapBound = math.Inf(1)
	}

	grad := linalg.NewVector(p.N)
	cgrad := linalg.NewVector(p.N)
	hess := linalg.NewMatrix(p.N, p.N)
	// Per-iteration scratch, hoisted out of the Newton loop: the
	// line-search candidate, the constraint-Hessian accumulator, and the
	// ridged trial matrix + rhs of the Newton solve.
	cand := linalg.NewVector(p.N)
	hscratch := linalg.NewMatrix(p.N, p.N)
	trial := linalg.NewMatrix(p.N, p.N)
	rhs := linalg.NewVector(p.N)
	// xcent snapshots the iterate after each completed centering — the
	// rollback target when a later centering stalls at float64 resolution,
	// so the reported gap bound m/t always describes the returned point.
	xcent := linalg.NewVector(p.N)
	haveCenter := false

	for outer := 0; outer < opts.MaxOuter; outer++ {
		res.OuterIters++

		// Inner Newton loop on φ_t. centered reports whether this t's
		// centering reached the Newton-decrement criterion; a centering
		// that instead hits float64 resolution (failed line search,
		// stagnation, norm-phase stall, iteration cap) leaves the iterate
		// between central points, where the m/t gap bound does not hold —
		// the solve then rolls back to the last completed centering and
		// stops.
		centered := false
		stagnant := 0
		for inner := 0; inner < opts.MaxNewton; inner++ {
			phi, ok := evalBarrier(p, x, t, grad, cgrad, hess, hscratch)
			if !ok {
				return res, fmt.Errorf("convexopt: barrier undefined at interior point (bug in caller's derivatives?)")
			}

			step, err := newtonStep(hess, grad, trial, rhs)
			if err != nil {
				return res, fmt.Errorf("convexopt: newton system: %w", err)
			}
			lambda2, err := grad.Dot(step)
			if err != nil {
				return res, err
			}
			lambda2 = -lambda2 // step = -H⁻¹∇φ ⇒ ∇φᵀstep = -λ²
			if lambda2/2 <= opts.NewtonTol {
				centered = true
				break
			}
			if math.IsNaN(lambda2) {
				return res, fmt.Errorf("convexopt: newton decrement is NaN")
			}
			res.NewtonIters++

			// Backtracking line search keeping strict feasibility.
			const alpha, beta = 0.25, 0.5
			s := 1.0
			improved := false
			achieved := 0.0
			for ls := 0; ls < 60; ls++ {
				if err := cand.CopyFrom(x); err != nil {
					return res, err
				}
				if err := cand.AXPY(s, step); err != nil {
					return res, err
				}
				if !strictlyFeasible(p, cand) {
					s *= beta
					continue
				}
				candPhi := barrierValue(p, cand, t)
				if math.IsNaN(candPhi) || candPhi > phi-alpha*s*lambda2 {
					s *= beta
					continue
				}
				x, cand = cand, x
				improved = true
				achieved = phi - candPhi
				break
			}
			if improved && achieved > 1e-10*(1+math.Abs(phi)) {
				stagnant = 0
				continue
			}
			if improved {
				// Negligible decrease; a few in a row mean φ-certified
				// progress has hit float64 resolution.
				stagnant++
				if stagnant < 3 {
					continue
				}
			}
			// φ-certified progress is below float64 resolution (the t·f
			// term swamps representable decreases at large t). Switch to
			// the norm phase: accept Newton steps on Newton-decrement
			// reduction instead, which is immune to the cancellation.
			centered, err = normPhase(p, t, opts, &x, &cand, grad, cgrad, hess, hscratch, trial, rhs)
			if err != nil {
				return res, err
			}
			break
		}

		if !centered {
			if haveCenter {
				copy(x, xcent)
			}
			break
		}
		res.GapBound = m / t
		copy(xcent, x)
		haveCenter = true
		if m == 0 || res.GapBound <= opts.Tol {
			res.Converged = true
			break
		}
		t *= opts.Mu
	}

	res.X = x
	res.Objective = p.Objective(x)
	if m == 0 {
		res.GapBound = 0
	}
	return res, nil
}

// initialT resolves the starting barrier parameter: the caller's t0 when
// positive, otherwise m / (5% of |f(x0)|) capped at 1 — the first
// centering then targets a gap bound proportionate to the objective
// scale, instead of creeping along the boundary when |f| is many orders
// of magnitude above 1.
func initialT(t0, m, f0 float64) float64 {
	if t0 > 0 {
		return t0
	}
	f0 = math.Abs(f0)
	if m > 0 && f0 > 1 {
		return math.Min(1, m/(0.05*f0))
	}
	return 1
}

// evalBarrier computes φ_t(x) and fills grad/hess. scratch is an n×n
// accumulator reused for the objective and constraint Hessians. Returns
// ok=false when a log argument is non-positive.
func evalBarrier(p Problem, x linalg.Vector, t float64, grad, cgrad linalg.Vector, hess, scratch *linalg.Matrix) (float64, bool) {
	n := p.N
	grad.Zero()
	hess.Zero()

	phi := t * p.Objective(x)
	p.Gradient(x, grad)
	for i := range grad {
		grad[i] *= t
	}
	if p.Hessian != nil {
		scratch.Zero()
		p.Hessian(x, scratch)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				hess.Add(i, j, t*scratch.At(i, j))
			}
		}
	}

	for _, c := range p.Constraints {
		g := c.Value(x)
		if g >= 0 || math.IsNaN(g) {
			return 0, false
		}
		phi -= math.Log(-g)

		cgrad.Zero()
		c.Gradient(x, cgrad)

		// ∇φ += ∇g/(−g);  ∇²φ += ∇g∇gᵀ/g² − ∇²g/g.
		inv := 1 / (-g)
		for i := 0; i < n; i++ {
			grad[i] += cgrad[i] * inv
		}
		for i := 0; i < n; i++ {
			if cgrad[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				hess.Add(i, j, cgrad[i]*cgrad[j]*inv*inv)
			}
		}
		if c.Hessian != nil {
			scratch.Zero()
			c.Hessian(x, scratch)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					hess.Add(i, j, scratch.At(i, j)*inv)
				}
			}
		}
	}
	return phi, true
}

// normPhase finishes a centering whose φ-value line search hit float64
// resolution: near the central point the barrier value t·f(x) − Σ log(·)
// dwarfs the decreases a Newton step makes, so the Armijo test cannot
// certify progress even though the iterate is still converging. The norm
// phase instead accepts (feasibility-damped) Newton steps as long as the
// Newton decrement λ² keeps shrinking — a quantity computed from
// gradients, free of the cancellation — until the decrement criterion is
// met (centered) or λ² stops improving (genuinely stalled). x and cand
// are swapped in place as steps are accepted.
func normPhase(p Problem, t float64, opts Options, x, cand *linalg.Vector,
	grad, cgrad linalg.Vector, hess, hscratch, trial *linalg.Matrix, rhs linalg.Vector) (bool, error) {
	eval := func(at linalg.Vector) (float64, error) {
		if _, ok := evalBarrier(p, at, t, grad, cgrad, hess, hscratch); !ok {
			return 0, fmt.Errorf("convexopt: barrier undefined at interior point (bug in caller's derivatives?)")
		}
		step, err := newtonStep(hess, grad, trial, rhs)
		if err != nil {
			return 0, err
		}
		l2, err := grad.Dot(step)
		if err != nil {
			return 0, err
		}
		copy(rhs, step) // keep the step; rhs doubles as its carrier
		return -l2, nil
	}
	lambda2, err := eval(*x)
	if err != nil {
		return false, err
	}
	for iter := 0; iter < 40; iter++ {
		if lambda2/2 <= opts.NewtonTol {
			return true, nil
		}
		s := 1.0
		for ; s > 1e-12; s *= 0.5 {
			if err := (*cand).CopyFrom(*x); err != nil {
				return false, err
			}
			if err := (*cand).AXPY(s, rhs); err != nil {
				return false, err
			}
			if strictlyFeasible(p, *cand) {
				break
			}
		}
		if s <= 1e-12 {
			return false, nil
		}
		l2, err := eval(*cand)
		if err != nil {
			return false, err
		}
		// Require genuine decrement reduction; NaN or growth means the
		// step left the quadratic basin and the phase must stop.
		if !(l2 < 0.9*lambda2) {
			return false, nil
		}
		*x, *cand = *cand, *x
		lambda2 = l2
	}
	return false, nil
}

// barrierValue computes φ_t(x) only; NaN when infeasible.
func barrierValue(p Problem, x linalg.Vector, t float64) float64 {
	phi := t * p.Objective(x)
	for _, c := range p.Constraints {
		g := c.Value(x)
		if g >= 0 || math.IsNaN(g) {
			return math.NaN()
		}
		phi -= math.Log(-g)
	}
	return phi
}

func strictlyFeasible(p Problem, x linalg.Vector) bool {
	for _, c := range p.Constraints {
		if g := c.Value(x); g >= 0 || math.IsNaN(g) {
			return false
		}
	}
	return true
}

// newtonStep solves H·step = −grad, adding a diagonal ridge when H is not
// numerically positive definite. The ridge scales with the largest diagonal
// entry: near-active constraints contribute rank-one barrier terms many
// orders of magnitude above the rest of the Hessian, and only a
// proportionate ridge restores numerical rank. trial and rhs are
// caller-owned scratch (overwritten).
func newtonStep(h *linalg.Matrix, grad linalg.Vector, trial *linalg.Matrix, rhs linalg.Vector) (linalg.Vector, error) {
	for i := range grad {
		rhs[i] = -grad[i]
	}
	maxDiag := 1.0
	for i := 0; i < h.Rows(); i++ {
		if d := math.Abs(h.At(i, i)); d > maxDiag {
			maxDiag = d
		}
	}
	ridge := 0.0
	for attempt := 0; attempt < 16; attempt++ {
		if err := trial.CopyFrom(h); err != nil {
			return nil, err
		}
		if ridge > 0 {
			for i := 0; i < trial.Rows(); i++ {
				trial.Add(i, i, ridge)
			}
		}
		step, err := trial.SolveCholesky(rhs)
		if err == nil {
			return step, nil
		}
		if ridge == 0 {
			ridge = 1e-14 * maxDiag
		} else {
			ridge *= 100
		}
	}
	// Last resort: LU on a strongly ridged system (gradient-like step).
	if err := trial.CopyFrom(h); err != nil {
		return nil, err
	}
	for i := 0; i < trial.Rows(); i++ {
		trial.Add(i, i, maxDiag)
	}
	return trial.SolveLU(rhs)
}

// KKTResiduals reports stationarity and complementary-slackness residuals
// at x for diagnostics: the max-norm of ∇f + Σ λ_i ∇g_i with
// λ_i = 1/(−t·g_i), and the largest |λ_i·g_i| = 1/t.
func KKTResiduals(p Problem, x linalg.Vector, t float64) (stationarity, complementarity float64, err error) {
	if len(x) != p.N {
		return 0, 0, fmt.Errorf("%w: x has %d entries, want %d", ErrDimension, len(x), p.N)
	}
	grad := linalg.NewVector(p.N)
	p.Gradient(x, grad)
	cgrad := linalg.NewVector(p.N)
	for _, c := range p.Constraints {
		g := c.Value(x)
		if g >= 0 {
			return 0, 0, ErrInfeasibleStart
		}
		lambda := 1 / (-t * g)
		for i := range cgrad {
			cgrad[i] = 0
		}
		c.Gradient(x, cgrad)
		for i := range grad {
			grad[i] += lambda * cgrad[i]
		}
		if cs := math.Abs(lambda * g); cs > complementarity {
			complementarity = cs
		}
	}
	return grad.NormInf(), complementarity, nil
}
