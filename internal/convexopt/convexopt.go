// Package convexopt implements a self-contained interior-point solver for
// smooth convex programs
//
//	minimize    f(x)
//	subject to  g_i(x) ≤ 0,  i = 1…m
//
// with twice-differentiable f and g_i, using the classic log-barrier
// path-following method (Boyd & Vandenberghe, ch. 11): for increasing t,
// minimize φ_t(x) = t·f(x) − Σ log(−g_i(x)) with damped Newton steps, each
// solved through a dense Cholesky factorization (package linalg). The
// suboptimality after the outer loop is bounded by m/t.
//
// The paper's ConvexOptimization strategy (problem (8)) is solved through
// this package; Go lacks a mature convex-optimization library, so the
// solver is hand-rolled (see DESIGN.md substitutions).
package convexopt

import (
	"errors"
	"fmt"
	"math"

	"arbloop/internal/linalg"
)

// Errors returned by the solver.
var (
	ErrInfeasibleStart = errors.New("convexopt: start point is not strictly feasible")
	ErrDimension       = errors.New("convexopt: dimension mismatch")
	ErrNoProgress      = errors.New("convexopt: line search failed to make progress")
	ErrBadProblem      = errors.New("convexopt: malformed problem")
)

// Constraint is one inequality g(x) ≤ 0.
type Constraint struct {
	// Value evaluates g(x). Feasibility requires g(x) < 0 strictly for
	// interior points.
	Value func(x linalg.Vector) float64
	// Gradient writes ∇g(x) into grad (len n, pre-zeroed by the solver).
	Gradient func(x linalg.Vector, grad linalg.Vector)
	// Hessian adds ∇²g(x) into h (n×n). Nil for affine constraints.
	Hessian func(x linalg.Vector, h *linalg.Matrix)
}

// Problem is a smooth convex minimization problem.
type Problem struct {
	// N is the number of variables.
	N int
	// Objective evaluates f(x).
	Objective func(x linalg.Vector) float64
	// Gradient writes ∇f(x) into grad (len n, pre-zeroed by the solver).
	Gradient func(x linalg.Vector, grad linalg.Vector)
	// Hessian adds ∇²f(x) into h (n×n, pre-zeroed by the solver). Nil for
	// affine objectives.
	Hessian func(x linalg.Vector, h *linalg.Matrix)
	// Constraints are the inequality constraints.
	Constraints []Constraint
}

// Options tune the barrier method. Zero values select defaults.
type Options struct {
	// Tol is the target duality-gap bound m/t (default 1e-9).
	Tol float64
	// T0 is the initial barrier parameter (default 1).
	T0 float64
	// Mu is the barrier growth factor per outer iteration (default 20).
	Mu float64
	// NewtonTol stops the inner loop when the Newton decrement λ²/2 falls
	// below it (default 1e-10).
	NewtonTol float64
	// MaxNewton bounds inner iterations per outer step (default 100).
	MaxNewton int
	// MaxOuter bounds outer (centering) steps (default 100).
	MaxOuter int
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.T0 <= 0 {
		o.T0 = 1
	}
	if o.Mu <= 1 {
		o.Mu = 20
	}
	if o.NewtonTol <= 0 {
		o.NewtonTol = 1e-10
	}
	if o.MaxNewton <= 0 {
		o.MaxNewton = 100
	}
	if o.MaxOuter <= 0 {
		o.MaxOuter = 100
	}
	return o
}

// Result reports the solver outcome.
type Result struct {
	// X is the final iterate.
	X linalg.Vector
	// Objective is f(X).
	Objective float64
	// GapBound is the final duality-gap bound m/t.
	GapBound float64
	// OuterIters and NewtonIters count barrier and Newton steps taken.
	OuterIters, NewtonIters int
	// Converged reports whether GapBound ≤ Tol was reached.
	Converged bool
}

// Minimize runs the barrier method from the strictly feasible point x0.
func Minimize(p Problem, x0 linalg.Vector, opts Options) (Result, error) {
	if p.N <= 0 || p.Objective == nil || p.Gradient == nil {
		return Result{}, fmt.Errorf("%w: need N>0, Objective, Gradient", ErrBadProblem)
	}
	if len(x0) != p.N {
		return Result{}, fmt.Errorf("%w: x0 has %d entries, want %d", ErrDimension, len(x0), p.N)
	}
	for i, c := range p.Constraints {
		if c.Value == nil || c.Gradient == nil {
			return Result{}, fmt.Errorf("%w: constraint %d lacks Value/Gradient", ErrBadProblem, i)
		}
		if v := c.Value(x0); v >= 0 || math.IsNaN(v) {
			return Result{}, fmt.Errorf("%w: constraint %d value %g", ErrInfeasibleStart, i, v)
		}
	}
	opts = opts.withDefaults()

	x := x0.Clone()
	m := float64(len(p.Constraints))
	t := opts.T0
	res := Result{}

	grad := linalg.NewVector(p.N)
	cgrad := linalg.NewVector(p.N)
	hess := linalg.NewMatrix(p.N, p.N)

	for outer := 0; outer < opts.MaxOuter; outer++ {
		res.OuterIters++

		// Inner Newton loop on φ_t.
		stagnant := 0
		for inner := 0; inner < opts.MaxNewton; inner++ {
			phi, ok := evalBarrier(p, x, t, grad, cgrad, hess)
			if !ok {
				return res, fmt.Errorf("convexopt: barrier undefined at interior point (bug in caller's derivatives?)")
			}

			step, err := newtonStep(hess, grad)
			if err != nil {
				return res, fmt.Errorf("convexopt: newton system: %w", err)
			}
			lambda2, err := grad.Dot(step)
			if err != nil {
				return res, err
			}
			lambda2 = -lambda2 // step = -H⁻¹∇φ ⇒ ∇φᵀstep = -λ²
			if lambda2/2 <= opts.NewtonTol {
				break
			}
			if math.IsNaN(lambda2) {
				return res, fmt.Errorf("convexopt: newton decrement is NaN")
			}
			res.NewtonIters++

			// Backtracking line search keeping strict feasibility.
			const alpha, beta = 0.25, 0.5
			s := 1.0
			improved := false
			achieved := 0.0
			for ls := 0; ls < 60; ls++ {
				cand := x.Clone()
				if err := cand.AXPY(s, step); err != nil {
					return res, err
				}
				if !strictlyFeasible(p, cand) {
					s *= beta
					continue
				}
				candPhi := barrierValue(p, cand, t)
				if math.IsNaN(candPhi) || candPhi > phi-alpha*s*lambda2 {
					s *= beta
					continue
				}
				x = cand
				improved = true
				achieved = phi - candPhi
				break
			}
			if !improved {
				// Newton direction exhausted at this precision; accept the
				// current centering point.
				break
			}
			// Consecutive negligible decreases mean the centering has hit
			// float64 resolution; further iterations cannot help.
			if achieved <= 1e-10*(1+math.Abs(phi)) {
				stagnant++
				if stagnant >= 3 {
					break
				}
			} else {
				stagnant = 0
			}
		}

		res.GapBound = m / t
		if m == 0 || res.GapBound <= opts.Tol {
			res.Converged = true
			break
		}
		t *= opts.Mu
	}

	res.X = x
	res.Objective = p.Objective(x)
	if m == 0 {
		res.GapBound = 0
	}
	return res, nil
}

// evalBarrier computes φ_t(x) and fills grad/hess. Returns ok=false when a
// log argument is non-positive.
func evalBarrier(p Problem, x linalg.Vector, t float64, grad, cgrad linalg.Vector, hess *linalg.Matrix) (float64, bool) {
	n := p.N
	for i := range grad {
		grad[i] = 0
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			hess.Set(i, j, 0)
		}
	}

	phi := t * p.Objective(x)
	p.Gradient(x, grad)
	for i := range grad {
		grad[i] *= t
	}
	if p.Hessian != nil {
		scaled := linalg.NewMatrix(n, n)
		p.Hessian(x, scaled)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				hess.Add(i, j, t*scaled.At(i, j))
			}
		}
	}

	for _, c := range p.Constraints {
		g := c.Value(x)
		if g >= 0 || math.IsNaN(g) {
			return 0, false
		}
		phi -= math.Log(-g)

		for i := range cgrad {
			cgrad[i] = 0
		}
		c.Gradient(x, cgrad)

		// ∇φ += ∇g/(−g);  ∇²φ += ∇g∇gᵀ/g² − ∇²g/g.
		inv := 1 / (-g)
		for i := 0; i < n; i++ {
			grad[i] += cgrad[i] * inv
		}
		for i := 0; i < n; i++ {
			if cgrad[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				hess.Add(i, j, cgrad[i]*cgrad[j]*inv*inv)
			}
		}
		if c.Hessian != nil {
			ch := linalg.NewMatrix(n, n)
			c.Hessian(x, ch)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					hess.Add(i, j, ch.At(i, j)*inv)
				}
			}
		}
	}
	return phi, true
}

// barrierValue computes φ_t(x) only; NaN when infeasible.
func barrierValue(p Problem, x linalg.Vector, t float64) float64 {
	phi := t * p.Objective(x)
	for _, c := range p.Constraints {
		g := c.Value(x)
		if g >= 0 || math.IsNaN(g) {
			return math.NaN()
		}
		phi -= math.Log(-g)
	}
	return phi
}

func strictlyFeasible(p Problem, x linalg.Vector) bool {
	for _, c := range p.Constraints {
		if g := c.Value(x); g >= 0 || math.IsNaN(g) {
			return false
		}
	}
	return true
}

// newtonStep solves H·step = −grad, adding a diagonal ridge when H is not
// numerically positive definite. The ridge scales with the largest diagonal
// entry: near-active constraints contribute rank-one barrier terms many
// orders of magnitude above the rest of the Hessian, and only a
// proportionate ridge restores numerical rank.
func newtonStep(h *linalg.Matrix, grad linalg.Vector) (linalg.Vector, error) {
	rhs := grad.Scale(-1)
	maxDiag := 1.0
	for i := 0; i < h.Rows(); i++ {
		if d := math.Abs(h.At(i, i)); d > maxDiag {
			maxDiag = d
		}
	}
	ridge := 0.0
	for attempt := 0; attempt < 16; attempt++ {
		trial := h.Clone()
		if ridge > 0 {
			for i := 0; i < trial.Rows(); i++ {
				trial.Add(i, i, ridge)
			}
		}
		step, err := trial.SolveCholesky(rhs)
		if err == nil {
			return step, nil
		}
		if ridge == 0 {
			ridge = 1e-14 * maxDiag
		} else {
			ridge *= 100
		}
	}
	// Last resort: LU on a strongly ridged system (gradient-like step).
	trial := h.Clone()
	for i := 0; i < trial.Rows(); i++ {
		trial.Add(i, i, maxDiag)
	}
	return trial.SolveLU(rhs)
}

// KKTResiduals reports stationarity and complementary-slackness residuals
// at x for diagnostics: the max-norm of ∇f + Σ λ_i ∇g_i with
// λ_i = 1/(−t·g_i), and the largest |λ_i·g_i| = 1/t.
func KKTResiduals(p Problem, x linalg.Vector, t float64) (stationarity, complementarity float64, err error) {
	if len(x) != p.N {
		return 0, 0, fmt.Errorf("%w: x has %d entries, want %d", ErrDimension, len(x), p.N)
	}
	grad := linalg.NewVector(p.N)
	p.Gradient(x, grad)
	cgrad := linalg.NewVector(p.N)
	for _, c := range p.Constraints {
		g := c.Value(x)
		if g >= 0 {
			return 0, 0, ErrInfeasibleStart
		}
		lambda := 1 / (-t * g)
		for i := range cgrad {
			cgrad[i] = 0
		}
		c.Gradient(x, cgrad)
		for i := range grad {
			grad[i] += lambda * cgrad[i]
		}
		if cs := math.Abs(lambda * g); cs > complementarity {
			complementarity = cs
		}
	}
	return grad.NormInf(), complementarity, nil
}
