package convexopt

import (
	"errors"
	"fmt"
	"math"

	"arbloop/internal/linalg"
)

// ErrInfeasible reports that Phase I could not find a strictly feasible
// point (the problem's interior is empty or numerically unreachable).
var ErrInfeasible = errors.New("convexopt: problem is infeasible")

// FindFeasible runs the standard Phase-I program
//
//	minimize    s
//	subject to  g_i(x) ≤ s
//
// from an arbitrary start x0, and returns a strictly feasible point for
// the original constraints (all g_i(x) < 0) when one exists. The
// augmented start (x0, s0) with s0 > max_i g_i(x0) is strictly feasible
// for the Phase-I program by construction, so Minimize always applies.
func FindFeasible(p Problem, x0 linalg.Vector, opts Options) (linalg.Vector, error) {
	if len(x0) != p.N {
		return nil, fmt.Errorf("%w: x0 has %d entries, want %d", ErrDimension, len(x0), p.N)
	}
	if len(p.Constraints) == 0 {
		return x0.Clone(), nil
	}

	// s0 strictly above the worst violation (and above zero so the start
	// is interior even when x0 already satisfies everything).
	worst := math.Inf(-1)
	for _, c := range p.Constraints {
		g := c.Value(x0)
		if math.IsNaN(g) {
			return nil, fmt.Errorf("convexopt: constraint undefined at x0")
		}
		if g > worst {
			worst = g
		}
	}
	s0 := worst + 1 + 0.1*math.Abs(worst)

	n := p.N
	aug := Problem{
		N:         n + 1,
		Objective: func(z linalg.Vector) float64 { return z[n] },
		Gradient: func(z linalg.Vector, g linalg.Vector) {
			g[n] = 1
		},
	}
	for i := range p.Constraints {
		c := p.Constraints[i]
		aug.Constraints = append(aug.Constraints, Constraint{
			Value: func(z linalg.Vector) float64 {
				return c.Value(z[:n]) - z[n]
			},
			Gradient: func(z linalg.Vector, g linalg.Vector) {
				// The solver pre-zeroes g; write the x-part then the s-part.
				c.Gradient(z[:n], g[:n])
				g[n] += -1
			},
			Hessian: func(z linalg.Vector, h *linalg.Matrix) {
				if c.Hessian == nil {
					return
				}
				sub := linalg.NewMatrix(n, n)
				c.Hessian(z[:n], sub)
				for r := 0; r < n; r++ {
					for col := 0; col < n; col++ {
						h.Add(r, col, sub.At(r, col))
					}
				}
			},
		})
	}

	z0 := make(linalg.Vector, n+1)
	copy(z0, x0)
	z0[n] = s0

	if opts.Tol <= 0 {
		opts.Tol = 1e-8
	}
	res, err := Minimize(aug, z0, opts)
	if err != nil {
		return nil, fmt.Errorf("convexopt: phase I: %w", err)
	}
	x := res.X[:n].Clone()
	// Strict feasibility check of the x-part against the true constraints.
	for i, c := range p.Constraints {
		if g := c.Value(x); g >= 0 || math.IsNaN(g) {
			return nil, fmt.Errorf("%w: constraint %d at %g after phase I (s* = %g)",
				ErrInfeasible, i, g, res.X[n])
		}
	}
	return x, nil
}
