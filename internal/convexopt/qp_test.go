package convexopt

import (
	"math"
	"math/rand"
	"testing"

	"arbloop/internal/linalg"
)

// TestRandomQPMatchesLinearSolve checks the barrier solver against the
// analytic optimum of random strictly convex quadratic programs whose
// box constraints are inactive: minimize ½xᵀQx − bᵀx over a huge box has
// the unique solution Qx = b, computable by LU.
func TestRandomQPMatchesLinearSolve(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)

		// Q = MᵀM + n·I (SPD), b random.
		m := linalg.NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		q, err := m.Transpose().Mul(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			q.Add(i, i, float64(n))
		}
		b := make(linalg.Vector, n)
		for i := range b {
			b[i] = rng.NormFloat64() * 5
		}

		want, err := q.SolveLU(b)
		if err != nil {
			t.Fatal(err)
		}

		prob := Problem{
			N: n,
			Objective: func(x linalg.Vector) float64 {
				qx, err := q.MulVec(x)
				if err != nil {
					return math.NaN()
				}
				xQx, err := x.Dot(qx)
				if err != nil {
					return math.NaN()
				}
				bx, err := b.Dot(x)
				if err != nil {
					return math.NaN()
				}
				return 0.5*xQx - bx
			},
			Gradient: func(x linalg.Vector, g linalg.Vector) {
				qx, err := q.MulVec(x)
				if err != nil {
					return
				}
				for i := range g {
					g[i] = qx[i] - b[i]
				}
			},
			Hessian: func(x linalg.Vector, h *linalg.Matrix) {
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						h.Add(i, j, q.At(i, j))
					}
				}
			},
		}
		// Large box keeps the constraints inactive but exercised.
		const box = 1e4
		for dim := 0; dim < n; dim++ {
			dim := dim
			prob.Constraints = append(prob.Constraints,
				Constraint{
					Value:    func(x linalg.Vector) float64 { return x[dim] - box },
					Gradient: func(x linalg.Vector, g linalg.Vector) { g[dim] += 1 },
				},
				Constraint{
					Value:    func(x linalg.Vector) float64 { return -box - x[dim] },
					Gradient: func(x linalg.Vector, g linalg.Vector) { g[dim] += -1 },
				},
			)
		}

		res, err := Minimize(prob, linalg.NewVector(n), Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range want {
			if math.Abs(res.X[i]-want[i]) > 1e-5*(1+math.Abs(want[i])) {
				t.Errorf("seed %d: x[%d] = %.8g, want %.8g", seed, i, res.X[i], want[i])
			}
		}
	}
}
