package convexopt

import (
	"math"
	"testing"

	"arbloop/internal/linalg"
)

// quadratic1D: minimize (x−3)² s.t. x ≤ 10, x ≥ −10 → x* = 3.
func quadratic1D() Problem {
	return Problem{
		N:         1,
		Objective: func(x linalg.Vector) float64 { return (x[0] - 3) * (x[0] - 3) },
		Gradient:  func(x linalg.Vector, g linalg.Vector) { g[0] = 2 * (x[0] - 3) },
		Hessian:   func(x linalg.Vector, h *linalg.Matrix) { h.Add(0, 0, 2) },
		Constraints: []Constraint{
			{
				Value:    func(x linalg.Vector) float64 { return x[0] - 10 },
				Gradient: func(x linalg.Vector, g linalg.Vector) { g[0] = 1 },
			},
			{
				Value:    func(x linalg.Vector) float64 { return -10 - x[0] },
				Gradient: func(x linalg.Vector, g linalg.Vector) { g[0] = -1 },
			},
		},
	}
}

func TestMinimizeQuadraticInterior(t *testing.T) {
	res, err := Minimize(quadratic1D(), linalg.Vector{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("not converged")
	}
	if math.Abs(res.X[0]-3) > 1e-6 {
		t.Errorf("x* = %g, want 3", res.X[0])
	}
	if math.Abs(res.Objective) > 1e-6 {
		t.Errorf("f* = %g, want 0", res.Objective)
	}
}

func TestMinimizeActiveConstraint(t *testing.T) {
	// minimize (x−3)² s.t. x ≤ 1 → x* = 1, f* = 4.
	p := Problem{
		N:         1,
		Objective: func(x linalg.Vector) float64 { return (x[0] - 3) * (x[0] - 3) },
		Gradient:  func(x linalg.Vector, g linalg.Vector) { g[0] = 2 * (x[0] - 3) },
		Hessian:   func(x linalg.Vector, h *linalg.Matrix) { h.Add(0, 0, 2) },
		Constraints: []Constraint{
			{
				Value:    func(x linalg.Vector) float64 { return x[0] - 1 },
				Gradient: func(x linalg.Vector, g linalg.Vector) { g[0] = 1 },
			},
		},
	}
	res, err := Minimize(p, linalg.Vector{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-5 {
		t.Errorf("x* = %g, want 1 (active constraint)", res.X[0])
	}
	if math.Abs(res.Objective-4) > 1e-4 {
		t.Errorf("f* = %g, want 4", res.Objective)
	}
}

func TestMinimizeMultiDimQP(t *testing.T) {
	// minimize (x−1)² + 2(y−2)² + xy/10 over the box [−5,5]².
	// Unconstrained optimum solves: 2(x−1) + y/10 = 0; 4(y−2) + x/10 = 0.
	p := Problem{
		N: 2,
		Objective: func(v linalg.Vector) float64 {
			x, y := v[0], v[1]
			return (x-1)*(x-1) + 2*(y-2)*(y-2) + x*y/10
		},
		Gradient: func(v linalg.Vector, g linalg.Vector) {
			x, y := v[0], v[1]
			g[0] = 2*(x-1) + y/10
			g[1] = 4*(y-2) + x/10
		},
		Hessian: func(v linalg.Vector, h *linalg.Matrix) {
			h.Add(0, 0, 2)
			h.Add(1, 1, 4)
			h.Add(0, 1, 0.1)
			h.Add(1, 0, 0.1)
		},
		Constraints: box2D(5),
	}
	res, err := Minimize(p, linalg.Vector{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Solve the 2×2 stationarity system exactly.
	a, _ := linalg.NewMatrixFromRows([][]float64{{2, 0.1}, {0.1, 4}})
	want, err := a.SolveLU(linalg.Vector{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-6 {
			t.Errorf("x*[%d] = %g, want %g", i, res.X[i], want[i])
		}
	}
}

func box2D(b float64) []Constraint {
	cs := make([]Constraint, 0, 4)
	for dim := 0; dim < 2; dim++ {
		dim := dim
		cs = append(cs,
			Constraint{
				Value:    func(x linalg.Vector) float64 { return x[dim] - b },
				Gradient: func(x linalg.Vector, g linalg.Vector) { g[dim] = 1 },
			},
			Constraint{
				Value:    func(x linalg.Vector) float64 { return -b - x[dim] },
				Gradient: func(x linalg.Vector, g linalg.Vector) { g[dim] = -1 },
			},
		)
	}
	return cs
}

func TestMinimizeNonlinearConstraint(t *testing.T) {
	// minimize x + y s.t. x² + y² ≤ 2 → x* = y* = −1, f* = −2.
	p := Problem{
		N:         2,
		Objective: func(v linalg.Vector) float64 { return v[0] + v[1] },
		Gradient:  func(v linalg.Vector, g linalg.Vector) { g[0], g[1] = 1, 1 },
		Constraints: []Constraint{
			{
				Value:    func(v linalg.Vector) float64 { return v[0]*v[0] + v[1]*v[1] - 2 },
				Gradient: func(v linalg.Vector, g linalg.Vector) { g[0], g[1] = 2*v[0], 2*v[1] },
				Hessian: func(v linalg.Vector, h *linalg.Matrix) {
					h.Add(0, 0, 2)
					h.Add(1, 1, 2)
				},
			},
		},
	}
	res, err := Minimize(p, linalg.Vector{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]+1) > 1e-4 || math.Abs(res.X[1]+1) > 1e-4 {
		t.Errorf("x* = %v, want (−1, −1)", res.X)
	}
	if math.Abs(res.Objective+2) > 1e-4 {
		t.Errorf("f* = %g, want −2", res.Objective)
	}
}

func TestMinimizeUnconstrained(t *testing.T) {
	p := Problem{
		N:         1,
		Objective: func(x linalg.Vector) float64 { return math.Cosh(x[0] - 2) },
		Gradient:  func(x linalg.Vector, g linalg.Vector) { g[0] = math.Sinh(x[0] - 2) },
		Hessian:   func(x linalg.Vector, h *linalg.Matrix) { h.Add(0, 0, math.Cosh(x[0]-2)) },
	}
	res, err := Minimize(p, linalg.Vector{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-6 {
		t.Errorf("x* = %g, want 2", res.X[0])
	}
	if res.GapBound != 0 {
		t.Errorf("GapBound = %g, want 0 for unconstrained", res.GapBound)
	}
}

func TestMinimizeValidation(t *testing.T) {
	p := quadratic1D()

	if _, err := Minimize(p, linalg.Vector{0, 0}, Options{}); err == nil {
		t.Error("wrong x0 dimension: want error")
	}
	if _, err := Minimize(p, linalg.Vector{50}, Options{}); err == nil {
		t.Error("infeasible start: want error")
	}
	if _, err := Minimize(Problem{N: 0}, nil, Options{}); err == nil {
		t.Error("empty problem: want error")
	}
	bad := quadratic1D()
	bad.Constraints = append(bad.Constraints, Constraint{})
	if _, err := Minimize(bad, linalg.Vector{0}, Options{}); err == nil {
		t.Error("constraint without Value: want error")
	}
}

func TestMinimizeBoundaryOptimum(t *testing.T) {
	// minimize x s.t. x ≥ 0 → optimum exactly on the boundary; the barrier
	// method approaches it to within the gap bound.
	p := Problem{
		N:         1,
		Objective: func(x linalg.Vector) float64 { return x[0] },
		Gradient:  func(x linalg.Vector, g linalg.Vector) { g[0] = 1 },
		Constraints: []Constraint{
			{
				Value:    func(x linalg.Vector) float64 { return -x[0] },
				Gradient: func(x linalg.Vector, g linalg.Vector) { g[0] = -1 },
			},
		},
	}
	res, err := Minimize(p, linalg.Vector{1}, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0] < 0 || res.X[0] > 1e-8 {
		t.Errorf("x* = %g, want within 1e-8 of boundary 0", res.X[0])
	}
}

func TestKKTResiduals(t *testing.T) {
	p := quadratic1D()
	res, err := Minimize(p, linalg.Vector{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// At the (interior) optimum the multipliers are tiny and stationarity
	// nearly holds with plain ∇f.
	stat, compl, err := KKTResiduals(p, res.X, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if stat > 1e-4 {
		t.Errorf("stationarity residual = %g", stat)
	}
	if compl > 1e-8 {
		t.Errorf("complementarity residual = %g", compl)
	}
	if _, _, err := KKTResiduals(p, linalg.Vector{0, 0}, 1); err == nil {
		t.Error("dimension mismatch: want error")
	}
	if _, _, err := KKTResiduals(p, linalg.Vector{11}, 1); err == nil {
		t.Error("infeasible point: want error")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Tol <= 0 || o.Mu <= 1 || o.MaxNewton <= 0 || o.MaxOuter <= 0 || o.NewtonTol <= 0 {
		t.Errorf("defaults not filled: %+v", o)
	}
	// T0 stays zero so the solvers derive the scale-aware start (see
	// initialT); an explicit T0 is honored verbatim.
	if o.T0 != 0 {
		t.Errorf("T0 default should stay 0 (scale-aware), got %g", o.T0)
	}
	if got := initialT(2.5, 6, 1e9); got != 2.5 {
		t.Errorf("explicit T0 overridden: %g", got)
	}
	if got := initialT(0, 6, 100); got != math.Min(1, 6/(0.05*100)) {
		t.Errorf("scale-aware T0 = %g", got)
	}
	if got := initialT(0, 6, 0.5); got != 1 {
		t.Errorf("small-scale T0 = %g, want 1", got)
	}
	// Explicit values survive.
	o2 := Options{Tol: 1e-3, Mu: 5}.withDefaults()
	if o2.Tol != 1e-3 || o2.Mu != 5 {
		t.Errorf("explicit options overridden: %+v", o2)
	}
}

func TestMinimizeTracksIterationCounts(t *testing.T) {
	res, err := Minimize(quadratic1D(), linalg.Vector{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.OuterIters <= 0 {
		t.Error("OuterIters not tracked")
	}
	if res.NewtonIters <= 0 {
		t.Error("NewtonIters not tracked")
	}
}
