package graph

import (
	"testing"

	"arbloop/internal/amm"
)

func triangle(t *testing.T) *Graph {
	t.Helper()
	pools := []*amm.Pool{
		amm.MustNewPool("p0", "X", "Y", 100, 200, 0.003),
		amm.MustNewPool("p1", "Y", "Z", 300, 200, 0.003),
		amm.MustNewPool("p2", "X", "Z", 400, 200, 0.003),
	}
	g, err := Build(pools)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildBasic(t *testing.T) {
	g := triangle(t)
	if g.NumNodes() != 3 {
		t.Errorf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	// Nodes are sorted lexicographically: X, Y, Z.
	want := []string{"X", "Y", "Z"}
	for i, w := range want {
		if g.Node(i) != w {
			t.Errorf("Node(%d) = %q, want %q", i, g.Node(i), w)
		}
	}
	nodes := g.Nodes()
	if len(nodes) != 3 || nodes[0] != "X" {
		t.Errorf("Nodes() = %v", nodes)
	}
}

func TestBuildRejectsNil(t *testing.T) {
	if _, err := Build([]*amm.Pool{nil}); err == nil {
		t.Error("nil pool: want error")
	}
}

func TestBuildEmpty(t *testing.T) {
	g, err := Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty graph: %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	if comps := g.ConnectedComponents(); len(comps) != 0 {
		t.Errorf("empty graph components = %v", comps)
	}
}

func TestNodeIndex(t *testing.T) {
	g := triangle(t)
	i, err := g.NodeIndex("Y")
	if err != nil || i != 1 {
		t.Errorf("NodeIndex(Y) = %d, %v", i, err)
	}
	if _, err := g.NodeIndex("W"); err == nil {
		t.Error("unknown token: want error")
	}
}

func TestAdjacencyAndDegree(t *testing.T) {
	g := triangle(t)
	ix, _ := g.NodeIndex("X")
	if g.Degree(ix) != 2 {
		t.Errorf("Degree(X) = %d, want 2", g.Degree(ix))
	}
	neighbors := make(map[int]bool)
	for _, a := range g.Adjacent(ix) {
		neighbors[a.Neighbor] = true
		pool := g.Pool(a.PoolIndex)
		if !pool.Has("X") {
			t.Errorf("adjacent pool %s lacks X", pool)
		}
	}
	iy, _ := g.NodeIndex("Y")
	iz, _ := g.NodeIndex("Z")
	if !neighbors[iy] || !neighbors[iz] {
		t.Errorf("X neighbors = %v, want {Y, Z}", neighbors)
	}
}

func TestMultiEdges(t *testing.T) {
	pools := []*amm.Pool{
		amm.MustNewPool("a", "X", "Y", 100, 200, 0.003),
		amm.MustNewPool("b", "X", "Y", 150, 250, 0.003),
	}
	g, err := Build(pools)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 2 {
		t.Errorf("multi-edge graph: %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	between, err := g.PoolsBetween("X", "Y")
	if err != nil {
		t.Fatal(err)
	}
	if len(between) != 2 {
		t.Errorf("PoolsBetween = %v, want 2 pools", between)
	}
	if _, err := g.PoolsBetween("X", "W"); err == nil {
		t.Error("unknown token: want error")
	}
}

func TestConnectedComponents(t *testing.T) {
	pools := []*amm.Pool{
		amm.MustNewPool("a", "A", "B", 1, 1, 0),
		amm.MustNewPool("b", "B", "C", 1, 1, 0),
		amm.MustNewPool("c", "D", "E", 1, 1, 0),
	}
	g, err := Build(pools)
	if err != nil {
		t.Fatal(err)
	}
	comps := g.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 {
		t.Errorf("component sizes = %d, %d; want 3, 2 (largest first)", len(comps[0]), len(comps[1]))
	}
}

func TestAccessorCopiesAreIndependent(t *testing.T) {
	g := triangle(t)
	pools := g.Pools()
	pools[0] = nil
	if g.Pool(0) == nil {
		t.Error("Pools() exposes internal slice")
	}
	edges := g.Edges()
	edges[0].PoolIndex = 99
	if g.Edges()[0].PoolIndex == 99 {
		t.Error("Edges() exposes internal slice")
	}
	nodes := g.Nodes()
	nodes[0] = "mutated"
	if g.Node(0) == "mutated" {
		t.Error("Nodes() exposes internal slice")
	}
}

func TestEdgeEndpointsMatchPoolTokens(t *testing.T) {
	g := triangle(t)
	for _, e := range g.Edges() {
		p := g.Pool(e.PoolIndex)
		if g.Node(e.U) != p.Token0 || g.Node(e.V) != p.Token1 {
			t.Errorf("edge %v endpoints do not match pool %s", e, p)
		}
	}
}
