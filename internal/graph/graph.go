// Package graph models the token exchange graph of a DEX snapshot: nodes
// are tokens, edges are liquidity pools (a multigraph — two tokens may
// share several pools). The paper builds this graph from Uniswap V2 state
// filtered by TVL and minimum reserve (§VI); package market applies those
// filters before handing pools to Build.
package graph

import (
	"errors"
	"fmt"
	"sort"

	"arbloop/internal/amm"
)

// Errors returned by graph construction and queries.
var (
	ErrUnknownNode = errors.New("graph: unknown token")
	ErrNilPool     = errors.New("graph: nil pool")
)

// Edge is a pool attached to the graph with resolved node indices.
type Edge struct {
	// PoolIndex is the index into Graph.Pools.
	PoolIndex int
	// U, V are node indices of Pool.Token0 and Pool.Token1.
	U, V int
}

// Graph is an immutable token exchange multigraph. Build it with Build;
// the zero value is an empty graph.
type Graph struct {
	nodes []string
	index map[string]int
	pools []*amm.Pool
	edges []Edge
	adj   [][]Adjacency
}

// Adjacency is one outgoing half-edge: the pool and the neighbour reached
// through it.
type Adjacency struct {
	PoolIndex int
	Neighbor  int
}

// Build constructs the graph from pools. Token keys become nodes sorted
// lexicographically so node indices are deterministic.
func Build(pools []*amm.Pool) (*Graph, error) {
	nodeSet := make(map[string]struct{})
	for i, p := range pools {
		if p == nil {
			return nil, fmt.Errorf("%w at index %d", ErrNilPool, i)
		}
		nodeSet[p.Token0] = struct{}{}
		nodeSet[p.Token1] = struct{}{}
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	index := make(map[string]int, len(nodes))
	for i, n := range nodes {
		index[n] = i
	}

	g := &Graph{
		nodes: nodes,
		index: index,
		pools: make([]*amm.Pool, len(pools)),
		edges: make([]Edge, 0, len(pools)),
		adj:   make([][]Adjacency, len(nodes)),
	}
	copy(g.pools, pools)
	for i, p := range pools {
		u, v := index[p.Token0], index[p.Token1]
		g.edges = append(g.edges, Edge{PoolIndex: i, U: u, V: v})
		g.adj[u] = append(g.adj[u], Adjacency{PoolIndex: i, Neighbor: v})
		g.adj[v] = append(g.adj[v], Adjacency{PoolIndex: i, Neighbor: u})
	}
	return g, nil
}

// Rebind returns a graph sharing this graph's topology (nodes, edges,
// adjacency) but reading reserves from the given pool slice. It is the
// per-block fast path behind the scan engine's topology cache: when two
// pool sets have equal fingerprints their canonical graphs are identical
// up to reserve values, so rebuilding the node index and adjacency lists
// per scan is pure waste. pools must be the canonical pool slice of a
// topology-identical market (same length, same tokens per index); the
// slice is retained, not copied, and must not be mutated afterwards.
func (g *Graph) Rebind(pools []*amm.Pool) (*Graph, error) {
	if len(pools) != len(g.pools) {
		return nil, fmt.Errorf("graph: rebind %d pools onto a %d-pool topology", len(pools), len(g.pools))
	}
	return &Graph{
		nodes: g.nodes,
		index: g.index,
		pools: pools,
		edges: g.edges,
		adj:   g.adj,
	}, nil
}

// NumNodes returns the token count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the pool count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Node returns the token key of node i.
func (g *Graph) Node(i int) string { return g.nodes[i] }

// Nodes returns a copy of all token keys in index order.
func (g *Graph) Nodes() []string {
	out := make([]string, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// NodeIndex resolves a token key to its node index.
func (g *Graph) NodeIndex(tok string) (int, error) {
	i, ok := g.index[tok]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownNode, tok)
	}
	return i, nil
}

// Pool returns the pool behind edge index e.
func (g *Graph) Pool(e int) *amm.Pool { return g.pools[e] }

// Pools returns a copy of the pool slice.
func (g *Graph) Pools() []*amm.Pool {
	out := make([]*amm.Pool, len(g.pools))
	copy(out, g.pools)
	return out
}

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Adjacent returns the half-edges leaving node i. The returned slice is
// shared; callers must not mutate it.
func (g *Graph) Adjacent(i int) []Adjacency { return g.adj[i] }

// Degree returns the number of pools incident to node i.
func (g *Graph) Degree(i int) int { return len(g.adj[i]) }

// ConnectedComponents returns the node sets of connected components,
// largest first, each sorted by node index.
func (g *Graph) ConnectedComponents() [][]int {
	seen := make([]bool, len(g.nodes))
	var comps [][]int
	for start := range g.nodes {
		if seen[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, n)
			for _, a := range g.adj[n] {
				if !seen[a.Neighbor] {
					seen[a.Neighbor] = true
					stack = append(stack, a.Neighbor)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// PoolsBetween returns the indices of all pools connecting tokens a and b.
func (g *Graph) PoolsBetween(a, b string) ([]int, error) {
	ia, err := g.NodeIndex(a)
	if err != nil {
		return nil, err
	}
	ib, err := g.NodeIndex(b)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, adj := range g.adj[ia] {
		if adj.Neighbor == ib {
			out = append(out, adj.PoolIndex)
		}
	}
	return out, nil
}
