package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"arbloop/internal/oplog"
)

// TestHealthzOplogSection covers the oplog probe: absent without a
// registration, present with one, and a degraded log flips the overall
// status to degraded while the server keeps serving.
func TestHealthzOplogSection(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if err := srv.Publish(ReportJSON{Version: 1}, time.Millisecond); err != nil {
		t.Fatal(err)
	}

	var h Health
	get := func() {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		h = Health{}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
	}

	get()
	if h.Oplog != nil {
		t.Fatalf("oplog section present without a probe: %+v", h.Oplog)
	}
	if h.Status != "ok" {
		t.Fatalf("baseline status = %q", h.Status)
	}

	stats := oplog.Stats{Appended: 10, Written: 9, Syncs: 3, Segments: 1}
	srv.SetOplogStatsProbe(func() oplog.Stats { return stats })
	get()
	if h.Oplog == nil || h.Oplog.Written != 9 {
		t.Fatalf("oplog section = %+v, want written 9", h.Oplog)
	}
	if h.Status != "ok" {
		t.Errorf("healthy oplog degraded status: %q", h.Status)
	}

	stats.Degraded = true
	stats.LastError = "oplog: injected fault: write: no space left on device"
	get()
	if h.Status != "degraded" {
		t.Errorf("status = %q with degraded oplog, want degraded", h.Status)
	}
	if h.Oplog == nil || !h.Oplog.Degraded || h.Oplog.LastError == "" {
		t.Errorf("oplog section = %+v, want degraded with last_error", h.Oplog)
	}

	srv.SetOplogStatsProbe(nil)
	get()
	if h.Oplog != nil {
		t.Errorf("oplog section survived unregistering: %+v", h.Oplog)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q after unregistering, want ok", h.Status)
	}
}
