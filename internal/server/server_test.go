package server

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"arbloop/internal/distrib"
	"arbloop/internal/scan"
)

func sampleReport(version uint64, height int64) ReportJSON {
	return Encode(scan.Report{
		Strategy:         "MaxMax",
		Parallelism:      2,
		Tokens:           3,
		Pools:            3,
		CyclesExamined:   1,
		LoopsDetected:    1,
		TopologyCacheHit: version > 1,
	}, version, height)
}

func TestStoreAtomicSwap(t *testing.T) {
	var st Store
	if _, _, ok := st.Latest(); ok {
		t.Error("empty store reported a report")
	}
	if err := st.Set(sampleReport(1, 10)); err != nil {
		t.Fatal(err)
	}
	body, rep, ok := st.Latest()
	if !ok || rep.Version != 1 {
		t.Fatalf("Latest = %v v%d", ok, rep.Version)
	}
	var decoded ReportJSON
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Version != 1 || decoded.Height != 10 || decoded.Strategy != "MaxMax" {
		t.Errorf("decoded = %+v", decoded)
	}
	if err := st.Set(sampleReport(2, 11)); err != nil {
		t.Fatal(err)
	}
	if _, rep, _ := st.Latest(); rep.Version != 2 {
		t.Errorf("swap kept v%d", rep.Version)
	}
}

func TestReportEndpoint(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("empty service = %d, want 503", resp.StatusCode)
	}

	if err := srv.Publish(sampleReport(1, 5), 3*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	var rep ReportJSON
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Version != 1 || rep.Height != 5 {
		t.Errorf("report = v%d h%d", rep.Version, rep.Height)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var h Health
	get := func() {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status = %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
	}

	get()
	if h.Status != "starting" || h.Scans != 0 {
		t.Errorf("pre-publish health = %+v", h)
	}

	if err := srv.Publish(sampleReport(2, 7), 4*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	get()
	if h.Status != "ok" || h.Version != 2 || h.Height != 7 || h.Scans != 1 {
		t.Errorf("health = %+v", h)
	}
	if h.LastScanMillis != 4 {
		t.Errorf("last_scan_ms = %g, want 4", h.LastScanMillis)
	}
	if !h.TopologyCacheHit {
		t.Error("cache hit not reflected in health")
	}
	if h.Delta != nil {
		t.Errorf("delta section present without a probe: %+v", h.Delta)
	}

	// With a probe registered the delta counters appear; unregistering
	// removes them again.
	srv.SetDeltaStatsProbe(func() scan.DeltaStats {
		return scan.DeltaStats{FullScans: 1, DeltaScans: 41, Shards: 4, ShardsScanned: 9}
	})
	get()
	if h.Delta == nil {
		t.Fatal("no delta section with a probe registered")
	}
	if h.Delta.FullScans != 1 || h.Delta.DeltaScans != 41 || h.Delta.Shards != 4 || h.Delta.ShardsScanned != 9 {
		t.Errorf("delta health = %+v", h.Delta)
	}
	srv.SetDeltaStatsProbe(nil)
	h = Health{}
	get()
	if h.Delta != nil {
		t.Errorf("delta section survived unregistering: %+v", h.Delta)
	}
}

// readEvents consumes SSE `data:` payloads from the stream until n events
// arrive or the context expires.
func readEvents(ctx context.Context, t *testing.T, url string, n int, ready chan<- struct{}) []ReportJSON {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("stream content-type = %q", ct)
	}
	if ready != nil {
		close(ready)
	}
	var out []ReportJSON
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() && len(out) < n {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var rep ReportJSON
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &rep); err != nil {
			t.Fatal(err)
		}
		out = append(out, rep)
	}
	return out
}

func TestStreamDeliversPublishedReports(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Pre-publish: a fresh stream client must get the current report
	// immediately, then the per-block updates.
	if err := srv.Publish(sampleReport(1, 1), time.Millisecond); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ready := make(chan struct{})
	done := make(chan []ReportJSON, 1)
	go func() { done <- readEvents(ctx, t, ts.URL, 3, ready) }()

	<-ready
	// Publish until the client has collected three events; the subscriber
	// registers only after its first event arrives, so keep feeding.
	go func() {
		for v := uint64(2); ctx.Err() == nil; v++ {
			if err := srv.Publish(sampleReport(v, int64(v)), time.Millisecond); err != nil {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	events := <-done
	if len(events) != 3 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0].Version != 1 {
		t.Errorf("first event v%d, want the pre-subscribe report v1", events[0].Version)
	}
	last := uint64(0)
	for _, e := range events {
		if e.Version <= last {
			t.Errorf("stream versions not increasing: %d after %d", e.Version, last)
		}
		last = e.Version
	}
}

func TestConcurrentReadersDuringPublishes(t *testing.T) {
	srv := New()
	if err := srv.Publish(sampleReport(1, 1), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	go func() {
		for v := uint64(2); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = srv.Publish(sampleReport(v, int64(v)), time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				resp, err := http.Get(ts.URL + "/v1/report")
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := io.ReadAll(resp.Body); err != nil {
					t.Error(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status = %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
}

func TestMethodNotAllowed(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/report", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/report = %d, want 405", resp.StatusCode)
	}
}

func TestCloseEndsActiveStreams(t *testing.T) {
	srv := New()
	if err := srv.Publish(sampleReport(1, 1), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Close must end the stream: the body reaches EOF without the client
	// cancelling anything.
	done := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, resp.Body)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the handler subscribe
	srv.Close()
	srv.Close() // idempotent
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not end on server Close")
	}

	// Post-Close subscriptions come back closed; report still serves.
	resp2, err := http.Get(ts.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(body), "event: report") {
		t.Error("post-Close stream missing the current-report event")
	}
	resp3, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Errorf("report after Close = %d", resp3.StatusCode)
	}
}

// --- distribution-tier HTTP semantics ---

// bigReport builds a report whose encoding is large enough that a
// re-encode or re-compress per request would dominate any alloc budget.
func bigReport(version uint64, height int64, results int) ReportJSON {
	r := sampleReport(version, height)
	for i := 0; i < results; i++ {
		r.Results = append(r.Results, ResultJSON{
			Index:     i,
			Loop:      strings.Repeat("ABC→", 64) + "A",
			Strategy:  "MaxMax",
			ProfitUSD: float64(results - i),
			NetTokens: map[string]float64{"A": 1, "B": 2, "C": 3},
		})
	}
	return r
}

func TestReportETagRoundTrip(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if err := srv.Publish(bigReport(1, 5, 3), time.Millisecond); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("ETag = %q", etag)
	}

	// Conditional revalidation: the same validator yields 304 and no body.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/report", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match hit = %d, want 304", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Errorf("304 carried %d body bytes", len(body))
	}
	if got := resp.Header.Get("ETag"); got != etag {
		t.Errorf("304 ETag = %q, want %q", got, etag)
	}

	// A stale validator serves the full report again.
	req.Header.Set("If-None-Match", `"v0-h0"`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stale If-None-Match = %d, want 200", resp.StatusCode)
	}

	// Publishing a new block invalidates the old validator.
	if err := srv.Publish(bigReport(2, 6, 3), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("old validator after publish = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("ETag"); got == etag {
		t.Error("ETag did not change across publishes")
	}
}

func TestReportGzipNegotiation(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if err := srv.Publish(bigReport(1, 5, 10), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// DisableCompression: we manage Accept-Encoding ourselves to see the
	// raw negotiated representation.
	client := &http.Client{Transport: &http.Transport{DisableCompression: true}}

	get := func(gzipOK bool) (*http.Response, []byte) {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/report", nil)
		if gzipOK {
			req.Header.Set("Accept-Encoding", "gzip")
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		if vary := resp.Header.Get("Vary"); vary != "Accept-Encoding" {
			t.Errorf("Vary = %q (gzipOK=%v)", vary, gzipOK)
		}
		return resp, body
	}

	respPlain, plain := get(false)
	if ce := respPlain.Header.Get("Content-Encoding"); ce != "" {
		t.Errorf("identity response Content-Encoding = %q", ce)
	}
	respGz, compressed := get(true)
	if ce := respGz.Header.Get("Content-Encoding"); ce != "gzip" {
		t.Fatalf("gzip response Content-Encoding = %q", ce)
	}
	if len(compressed) >= len(plain) {
		t.Errorf("gzip body (%d) not smaller than plain (%d)", len(compressed), len(plain))
	}
	zr, err := gzip.NewReader(bytes.NewReader(compressed))
	if err != nil {
		t.Fatal(err)
	}
	decompressed, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(decompressed, plain) {
		t.Error("gzip representation does not decompress to the identity body")
	}
}

func TestReportTopParam(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if err := srv.Publish(bigReport(1, 5, 6), time.Millisecond); err != nil {
		t.Fatal(err)
	}

	var full ReportJSON
	get := func(q string, into *ReportJSON) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/report" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if into != nil {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("GET %s: %v", q, err)
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		return resp
	}
	get("", &full)
	if len(full.Results) != 6 {
		t.Fatalf("full report has %d results", len(full.Results))
	}

	// ?top=N is a decode-equivalent prefix of the full report.
	for _, n := range []int{1, 3, 5} {
		var got ReportJSON
		resp := get(fmt.Sprintf("?top=%d", n), &got)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("?top=%d status %d", n, resp.StatusCode)
		}
		want := full
		want.Results = full.Results[:n]
		if !reflect.DeepEqual(got, want) {
			t.Errorf("?top=%d differs from full-report prefix", n)
		}
	}

	// Clamping: 0 and past-the-end serve the full report.
	for _, q := range []string{"?top=0", "?top=6", "?top=999"} {
		var got ReportJSON
		if get(q, &got); len(got.Results) != 6 {
			t.Errorf("%s returned %d results, want all 6", q, len(got.Results))
		}
	}

	// Distinct representations get distinct validators, each honoring
	// If-None-Match.
	respTop := get("?top=2", nil)
	topETag := respTop.Header.Get("ETag")
	respFull := get("", nil)
	if topETag == "" || topETag == respFull.Header.Get("ETag") {
		t.Errorf("top=2 ETag %q not distinct from full %q", topETag, respFull.Header.Get("ETag"))
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/report?top=2", nil)
	req.Header.Set("If-None-Match", topETag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("top=2 If-None-Match = %d, want 304", resp.StatusCode)
	}

	// Malformed values are a JSON 400.
	for _, q := range []string{"?top=-1", "?top=abc", "?top=1.5"} {
		resp, err := http.Get(ts.URL + "/v1/report" + q)
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Errorf("%s error body is not JSON: %v", q, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", q, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s error Content-Type = %q", q, ct)
		}
		if e.Error == "" {
			t.Errorf("%s error body empty", q)
		}
	}
}

// TestJSONErrorBodies: every error path answers JSON with the right
// Content-Type (http.Error would have said text/plain).
func TestJSONErrorBodies(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty service = %d, want 503", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("503 Content-Type = %q", ct)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Errorf("503 body not a JSON error (%v, %+v)", err, e)
	}
}

// TestStreamEventIDsAndResume: events carry the feed version as SSE id,
// and a reconnect with Last-Event-ID naming the current frame skips the
// duplicate initial replay.
func TestStreamEventIDsAndResume(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if err := srv.Publish(sampleReport(1, 1), time.Millisecond); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// readFirstEvent returns the id and data version of the first event.
	readFirstEvent := func(lastEventID string) (id string, version uint64) {
		t.Helper()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/stream", nil)
		if err != nil {
			t.Fatal(err)
		}
		if lastEventID != "" {
			req.Header.Set("Last-Event-ID", lastEventID)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		stop := make(chan struct{})
		defer close(stop)
		if lastEventID != "" {
			// The resumed client must wait for a *new* block: pump
			// publishes until its first event lands.
			go func() {
				for v := uint64(2); ; v++ {
					select {
					case <-stop:
						return
					case <-time.After(5 * time.Millisecond):
					}
					_ = srv.Publish(sampleReport(v, int64(v)), time.Millisecond)
				}
			}()
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "id: ") {
				id = strings.TrimPrefix(line, "id: ")
			}
			if strings.HasPrefix(line, "data: ") {
				var rep ReportJSON
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &rep); err != nil {
					t.Fatal(err)
				}
				return id, rep.Version
			}
		}
		t.Fatalf("stream ended without an event (last id %q): %v", id, sc.Err())
		return "", 0
	}

	// Fresh client: immediate replay of the current frame, id == version.
	id, v := readFirstEvent("")
	if id != "1" || v != 1 {
		t.Errorf("fresh client first event id=%q v=%d, want id=1 v=1", id, v)
	}
	// Resumed client already holding v1: no duplicate replay — the first
	// event is a later block, ids still tracking versions.
	id, v = readFirstEvent("1")
	if v <= 1 {
		t.Errorf("resumed client replayed v%d despite Last-Event-ID: 1", v)
	}
	if id == "" || id != fmt.Sprintf("%d", v) {
		t.Errorf("resumed event id %q does not match version %d", id, v)
	}
}

// smallBufferListener shrinks each accepted conn's kernel write buffer
// so a non-reading client back-pressures the server in a test-sized
// number of events.
type smallBufferListener struct {
	net.Listener
}

func (l smallBufferListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetWriteBuffer(4 << 10)
	}
	return c, nil
}

// TestSlowConsumerEviction: a stalled SSE client is evicted once it
// cannot drain an event within the write deadline; healthy clients keep
// streaming throughout. Run under -race in CI.
func TestSlowConsumerEviction(t *testing.T) {
	tr := distrib.NewTracker()
	srv := New(WithConnTracker(tr), WithWriteTimeout(500*time.Millisecond))
	// ~70 KB frames overflow the shrunk socket buffers in an event or
	// two, while a reading client drains one in well under the deadline.
	if err := srv.Publish(bigReport(1, 1, 200), time.Millisecond); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(smallBufferListener{ln})
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Healthy client: counts events for the duration.
	var healthyEvents atomic.Uint64
	healthyUp := make(chan struct{})
	go func() {
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/stream", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			close(healthyUp)
			return
		}
		defer resp.Body.Close()
		close(healthyUp)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 4<<20), 4<<20)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "data: ") {
				healthyEvents.Add(1)
			}
		}
	}()
	<-healthyUp

	// Stalled client: sends the request, shrinks its receive window, and
	// never reads a byte.
	stalled, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if tc, ok := stalled.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(4 << 10)
	}
	if _, err := stalled.Write([]byte("GET /v1/stream HTTP/1.1\r\nHost: bench\r\n\r\n")); err != nil {
		t.Fatal(err)
	}

	// Publish until the stalled client trips the write deadline.
	deadline := time.Now().Add(20 * time.Second)
	v := uint64(2)
	for tr.Evicted() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no eviction after %d publishes (stats %+v)", v-2, tr.Stats())
		}
		if err := srv.Publish(bigReport(v, int64(v), 200), time.Millisecond); err != nil {
			t.Fatal(err)
		}
		v++
		time.Sleep(10 * time.Millisecond)
	}

	// The evicted connection is actually closed: draining it hits EOF /
	// reset rather than blocking forever.
	_ = stalled.SetReadDeadline(time.Now().Add(10 * time.Second))
	drained := make([]byte, 64<<10)
	for {
		if _, err := stalled.Read(drained); err != nil {
			break
		}
	}

	// Healthy client was unaffected: it keeps receiving post-eviction
	// publishes.
	target := healthyEvents.Load() + 2
	deadline = time.Now().Add(10 * time.Second)
	for healthyEvents.Load() < target {
		if time.Now().After(deadline) {
			t.Fatalf("healthy client stopped at %d events after eviction", healthyEvents.Load())
		}
		if err := srv.Publish(bigReport(v, int64(v), 10), time.Millisecond); err != nil {
			t.Fatal(err)
		}
		v++
		time.Sleep(20 * time.Millisecond)
	}
}

func TestHealthzConnectionsSection(t *testing.T) {
	tr := distrib.NewTracker()
	srv := New(WithConnTracker(tr))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	tr.Evict()
	var h Health
	get := func() {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		h = Health{}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
	}
	get()
	if h.Connections == nil {
		t.Fatal("no connections section with a tracker wired")
	}
	if h.Connections.Evicted != 1 {
		t.Errorf("connections = %+v, want evicted 1", h.Connections)
	}
	if runtime.GOOS == "linux" && h.Connections.FDSoftLimit == 0 {
		t.Error("no fd soft limit probed on linux")
	}

	// The probe pattern mirrors SetDeltaStatsProbe: replace and remove.
	srv.SetConnStatsProbe(func() distrib.ConnStats { return distrib.ConnStats{Active: 42} })
	get()
	if h.Connections == nil || h.Connections.Active != 42 {
		t.Errorf("custom probe not honored: %+v", h.Connections)
	}
	srv.SetConnStatsProbe(nil)
	get()
	if h.Connections != nil {
		t.Errorf("connections survived unregistering: %+v", h.Connections)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := New()
	// External subsystems mount into the same registry the handler
	// renders — the scan engine's families stand in for all of them.
	m := scan.NewMetrics()
	m.Register(srv.Telemetry())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	scrape := func() string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics status = %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
			t.Errorf("content-type = %q, want Prometheus text 0.0.4", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	// Pre-publish: the server's own families exist from construction.
	body := scrape()
	for _, want := range []string{
		"# TYPE arbloop_uptime_seconds gauge",
		"arbloop_scans_published_total 0",
		"# TYPE arbloop_frame_build_seconds histogram",
		"# TYPE arbloop_scans_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Publish + one read per variant: the publish counter, the
	// frame-build histogram, and the request-variant counters advance.
	// (The default client negotiates gzip; the plain read opts out.)
	if err := srv.Publish(sampleReport(1, 5), 3*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/report", nil)
	if err != nil {
		t.Fatal(err)
	}
	// An explicit Accept-Encoding stops the transport injecting gzip.
	req.Header.Set("Accept-Encoding", "identity")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	body = scrape()
	for _, want := range []string{
		"arbloop_scans_published_total 1",
		"arbloop_frame_build_seconds_count 1",
		`arbloop_report_requests_total{variant="gzip"} 1`,
		`arbloop_report_requests_total{variant="plain"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("post-publish metrics missing %q", want)
		}
	}

	// Non-GET is rejected like every other read endpoint.
	post, err := http.Post(ts.URL+"/v1/metrics", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/metrics = %d, want 405", post.StatusCode)
	}
}

func TestHealthzTelemetrySection(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := srv.Publish(sampleReport(3, 9), 4*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.UptimeSeconds <= 0 {
		t.Errorf("uptime_seconds = %g", h.UptimeSeconds)
	}
	if d, err := time.ParseDuration(h.LastScanDuration); err != nil || d != 4*time.Millisecond {
		t.Errorf("last_scan_duration = %q (%v), want 4ms", h.LastScanDuration, err)
	}
	if h.Telemetry == nil {
		t.Fatal("no telemetry section in healthz")
	}
	if got := h.Telemetry["arbloop_scans_published_total"]; got != 1 {
		t.Errorf("telemetry scans_published = %g, want 1", got)
	}
	if h.Feed != nil {
		t.Errorf("feed section present without a probe: %+v", h.Feed)
	}
}
