package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"arbloop/internal/scan"
)

func sampleReport(version uint64, height int64) ReportJSON {
	return Encode(scan.Report{
		Strategy:         "MaxMax",
		Parallelism:      2,
		Tokens:           3,
		Pools:            3,
		CyclesExamined:   1,
		LoopsDetected:    1,
		TopologyCacheHit: version > 1,
	}, version, height)
}

func TestStoreAtomicSwap(t *testing.T) {
	var st Store
	if _, _, ok := st.Latest(); ok {
		t.Error("empty store reported a report")
	}
	if err := st.Set(sampleReport(1, 10)); err != nil {
		t.Fatal(err)
	}
	body, rep, ok := st.Latest()
	if !ok || rep.Version != 1 {
		t.Fatalf("Latest = %v v%d", ok, rep.Version)
	}
	var decoded ReportJSON
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Version != 1 || decoded.Height != 10 || decoded.Strategy != "MaxMax" {
		t.Errorf("decoded = %+v", decoded)
	}
	if err := st.Set(sampleReport(2, 11)); err != nil {
		t.Fatal(err)
	}
	if _, rep, _ := st.Latest(); rep.Version != 2 {
		t.Errorf("swap kept v%d", rep.Version)
	}
}

func TestReportEndpoint(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("empty service = %d, want 503", resp.StatusCode)
	}

	if err := srv.Publish(sampleReport(1, 5), 3*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	var rep ReportJSON
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Version != 1 || rep.Height != 5 {
		t.Errorf("report = v%d h%d", rep.Version, rep.Height)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var h Health
	get := func() {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status = %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
	}

	get()
	if h.Status != "starting" || h.Scans != 0 {
		t.Errorf("pre-publish health = %+v", h)
	}

	if err := srv.Publish(sampleReport(2, 7), 4*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	get()
	if h.Status != "ok" || h.Version != 2 || h.Height != 7 || h.Scans != 1 {
		t.Errorf("health = %+v", h)
	}
	if h.LastScanMillis != 4 {
		t.Errorf("last_scan_ms = %g, want 4", h.LastScanMillis)
	}
	if !h.TopologyCacheHit {
		t.Error("cache hit not reflected in health")
	}
	if h.Delta != nil {
		t.Errorf("delta section present without a probe: %+v", h.Delta)
	}

	// With a probe registered the delta counters appear; unregistering
	// removes them again.
	srv.SetDeltaStatsProbe(func() scan.DeltaStats {
		return scan.DeltaStats{FullScans: 1, DeltaScans: 41, Shards: 4, ShardsScanned: 9}
	})
	get()
	if h.Delta == nil {
		t.Fatal("no delta section with a probe registered")
	}
	if h.Delta.FullScans != 1 || h.Delta.DeltaScans != 41 || h.Delta.Shards != 4 || h.Delta.ShardsScanned != 9 {
		t.Errorf("delta health = %+v", h.Delta)
	}
	srv.SetDeltaStatsProbe(nil)
	h = Health{}
	get()
	if h.Delta != nil {
		t.Errorf("delta section survived unregistering: %+v", h.Delta)
	}
}

// readEvents consumes SSE `data:` payloads from the stream until n events
// arrive or the context expires.
func readEvents(ctx context.Context, t *testing.T, url string, n int, ready chan<- struct{}) []ReportJSON {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("stream content-type = %q", ct)
	}
	if ready != nil {
		close(ready)
	}
	var out []ReportJSON
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() && len(out) < n {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var rep ReportJSON
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &rep); err != nil {
			t.Fatal(err)
		}
		out = append(out, rep)
	}
	return out
}

func TestStreamDeliversPublishedReports(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Pre-publish: a fresh stream client must get the current report
	// immediately, then the per-block updates.
	if err := srv.Publish(sampleReport(1, 1), time.Millisecond); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ready := make(chan struct{})
	done := make(chan []ReportJSON, 1)
	go func() { done <- readEvents(ctx, t, ts.URL, 3, ready) }()

	<-ready
	// Publish until the client has collected three events; the subscriber
	// registers only after its first event arrives, so keep feeding.
	go func() {
		for v := uint64(2); ctx.Err() == nil; v++ {
			if err := srv.Publish(sampleReport(v, int64(v)), time.Millisecond); err != nil {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	events := <-done
	if len(events) != 3 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0].Version != 1 {
		t.Errorf("first event v%d, want the pre-subscribe report v1", events[0].Version)
	}
	last := uint64(0)
	for _, e := range events {
		if e.Version <= last {
			t.Errorf("stream versions not increasing: %d after %d", e.Version, last)
		}
		last = e.Version
	}
}

func TestConcurrentReadersDuringPublishes(t *testing.T) {
	srv := New()
	if err := srv.Publish(sampleReport(1, 1), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	go func() {
		for v := uint64(2); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = srv.Publish(sampleReport(v, int64(v)), time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				resp, err := http.Get(ts.URL + "/v1/report")
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := io.ReadAll(resp.Body); err != nil {
					t.Error(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status = %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
}

func TestMethodNotAllowed(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/report", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/report = %d, want 405", resp.StatusCode)
	}
}

func TestCloseEndsActiveStreams(t *testing.T) {
	srv := New()
	if err := srv.Publish(sampleReport(1, 1), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Close must end the stream: the body reaches EOF without the client
	// cancelling anything.
	done := make(chan error, 1)
	go func() {
		_, err := io.Copy(io.Discard, resp.Body)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the handler subscribe
	srv.Close()
	srv.Close() // idempotent
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not end on server Close")
	}

	// Post-Close subscriptions come back closed; report still serves.
	resp2, err := http.Get(ts.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(body), "event: report") {
		t.Error("post-Close stream missing the current-report event")
	}
	resp3, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Errorf("report after Close = %d", resp3.StatusCode)
	}
}
