package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// discardRW is the cheapest possible ResponseWriter: alloc measurements
// and benchmarks see the handler's own cost, not a recorder's buffers.
type discardRW struct {
	h http.Header
	n int64
}

func (d *discardRW) Header() http.Header { return d.h }
func (d *discardRW) Write(p []byte) (int, error) {
	d.n += int64(len(p))
	return len(p), nil
}
func (d *discardRW) WriteHeader(int) {}

// benchHandler returns the mux serving a published ~200-result report
// (large enough that any per-request re-encode or re-compress would blow
// the alloc budgets by orders of magnitude).
func benchHandler(tb testing.TB) (http.Handler, *Server) {
	tb.Helper()
	srv := New()
	if err := srv.Publish(bigReport(1, 9, 200), time.Millisecond); err != nil {
		tb.Fatal(err)
	}
	return srv.Handler(), srv
}

// TestReportSteadyStateAllocBudget pins the read path's allocation
// ceiling: steady-state GET /v1/report — plain, gzip-negotiated, and
// If-None-Match revalidation — performs zero JSON marshaling and zero
// gzip compression per request. The budgets (a handful of header-map
// slices and the mux's routing bookkeeping) are far below what a single
// re-encode (hundreds of allocs) or re-compress would cost, so any
// regression that sneaks encoding back into the request path fails here.
func TestReportSteadyStateAllocBudget(t *testing.T) {
	h, _ := benchHandler(t)

	measure := func(name string, budget float64, mk func() *http.Request) {
		t.Helper()
		req := mk()
		w := &discardRW{h: make(http.Header)}
		h.ServeHTTP(w, req) // warm-up (lazy mux state)
		allocs := testing.AllocsPerRun(200, func() {
			h.ServeHTTP(w, req)
		})
		t.Logf("%-14s %4.0f allocs/request (budget %.0f)", name, allocs, budget)
		if allocs > budget {
			t.Errorf("%s path allocates %.0f/request, budget %.0f — did encoding leak back into the read path?",
				name, allocs, budget)
		}
	}

	// Measured on the reference container: plain 6, gzip 7,
	// not_modified 3, top5 9. Budgets leave ~2x headroom for stdlib
	// drift while staying orders of magnitude below one re-encode.
	measure("plain", 12, func() *http.Request {
		return httptest.NewRequest(http.MethodGet, "/v1/report", nil)
	})
	measure("gzip", 12, func() *http.Request {
		req := httptest.NewRequest(http.MethodGet, "/v1/report", nil)
		req.Header.Set("Accept-Encoding", "gzip")
		return req
	})
	measure("not_modified", 8, func() *http.Request {
		req := httptest.NewRequest(http.MethodGet, "/v1/report", nil)
		req.Header.Set("If-None-Match", `"v1-h9"`)
		return req
	})
	// ?top=N parses the query (a few more allocs) but still never
	// re-encodes.
	measure("top5", 18, func() *http.Request {
		return httptest.NewRequest(http.MethodGet, "/v1/report?top=5", nil)
	})
}

func benchmarkReport(b *testing.B, mk func() *http.Request) {
	h, _ := benchHandler(b)
	req := mk()
	w := &discardRW{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ServeHTTP(w, req)
	}
	b.SetBytes(w.n / int64(b.N))
}

// `make bench-server` smoke: the four read paths at the handler layer
// (no sockets), proving the frame fast path stays engaged.
func BenchmarkServerReportPlain(b *testing.B) {
	benchmarkReport(b, func() *http.Request {
		return httptest.NewRequest(http.MethodGet, "/v1/report", nil)
	})
}

func BenchmarkServerReportGzip(b *testing.B) {
	benchmarkReport(b, func() *http.Request {
		req := httptest.NewRequest(http.MethodGet, "/v1/report", nil)
		req.Header.Set("Accept-Encoding", "gzip")
		return req
	})
}

func BenchmarkServerReportNotModified(b *testing.B) {
	benchmarkReport(b, func() *http.Request {
		req := httptest.NewRequest(http.MethodGet, "/v1/report", nil)
		req.Header.Set("If-None-Match", `"v1-h9"`)
		return req
	})
}

func BenchmarkServerReportTop5(b *testing.B) {
	benchmarkReport(b, func() *http.Request {
		return httptest.NewRequest(http.MethodGet, "/v1/report?top=5", nil)
	})
}

// BenchmarkServerPublish prices the write side: one frame build (encode
// + gzip + SSE framing + prefix index) per block.
func BenchmarkServerPublish(b *testing.B) {
	srv := New()
	rep := bigReport(1, 9, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv.Publish(rep, time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}
