package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"arbloop/internal/scan"
	"arbloop/internal/source"
)

func getHealth(t *testing.T, url string) Health {
	t.Helper()
	resp, err := http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// The full status lifecycle: starting → ok → degraded (fallback-priced
// report) → stale (no publish past the stale-after threshold).
func TestHealthzStatusLifecycle(t *testing.T) {
	const staleAfter = 80 * time.Millisecond
	srv := New(WithStaleAfter(staleAfter))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if h := getHealth(t, ts.URL); h.Status != "starting" || h.LastUpdateAgeSeconds != -1 {
		t.Fatalf("pre-publish health = %+v, want starting/-1", h)
	}

	if err := srv.Publish(sampleReport(1, 5), time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if h := getHealth(t, ts.URL); h.Status != "ok" || h.LastUpdateAgeSeconds < 0 || h.Degraded {
		t.Fatalf("fresh health = %+v, want ok", h)
	}

	degraded := Encode(scan.Report{Strategy: "MaxMax", Degraded: true}, 2, 6)
	if err := srv.Publish(degraded, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if h := getHealth(t, ts.URL); h.Status != "degraded" || !h.Degraded {
		t.Fatalf("degraded health = %+v, want degraded", h)
	}

	time.Sleep(staleAfter + 30*time.Millisecond)
	if h := getHealth(t, ts.URL); h.Status != "stale" {
		t.Fatalf("aged health = %+v, want stale (age %.3fs)", h, h.LastUpdateAgeSeconds)
	}
}

// An open dependency breaker flips status to degraded and surfaces in the
// per-dependency breakers section.
func TestHealthzBreakersSection(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if err := srv.Publish(sampleReport(1, 5), time.Millisecond); err != nil {
		t.Fatal(err)
	}

	state := source.BreakerState{State: source.BreakerClosed, LastSuccessAgeSeconds: -1}
	srv.SetBreakerStatsProbe(func() map[string]source.BreakerState {
		return map[string]source.BreakerState{"prices": state}
	})
	if h := getHealth(t, ts.URL); h.Status != "ok" || h.Breakers["prices"].State != source.BreakerClosed {
		t.Fatalf("closed-breaker health = %+v", h)
	}

	state = source.BreakerState{State: source.BreakerOpen, ConsecutiveFailures: 5, Trips: 1, LastSuccessAgeSeconds: 12}
	h := getHealth(t, ts.URL)
	if h.Status != "degraded" {
		t.Fatalf("open-breaker status = %q, want degraded", h.Status)
	}
	if b := h.Breakers["prices"]; b.State != source.BreakerOpen || b.Trips != 1 {
		t.Fatalf("breakers section = %+v", h.Breakers)
	}
}

// /v1/report carries an Age header (whole seconds since publish) and the
// degraded flag in the body.
func TestReportAgeHeaderAndDegradedField(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	degraded := Encode(scan.Report{Strategy: "MaxMax", Degraded: true}, 3, 9)
	if err := srv.Publish(degraded, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if age := resp.Header.Get("Age"); age != "0" {
		t.Fatalf("Age header = %q, want \"0\" right after publish", age)
	}
	var rep ReportJSON
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Fatal("degraded flag lost on the wire")
	}
}

// An idle /v1/stream connection receives periodic heartbeat comments so
// clients and intermediaries can tell quiet from dead.
func TestStreamHeartbeat(t *testing.T) {
	srv := New(WithHeartbeat(20 * time.Millisecond))
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if err := srv.Publish(sampleReport(1, 5), time.Millisecond); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type line struct {
		s   string
		err error
	}
	lines := make(chan line, 16)
	go func() {
		r := bufio.NewReader(resp.Body)
		for {
			s, err := r.ReadString('\n')
			lines <- line{s, err}
			if err != nil {
				return
			}
		}
	}()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case l := <-lines:
			if l.err != nil {
				t.Fatalf("stream read: %v", l.err)
			}
			if strings.HasPrefix(l.s, ": heartbeat") {
				return // got one — that's the contract
			}
		case <-deadline:
			t.Fatal("no heartbeat within 5s on an idle stream")
		}
	}
}
