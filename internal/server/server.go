// Package server is the HTTP face of the live opportunity service: it
// holds the latest ranked scan report in an atomically swapped in-memory
// store and serves it to any number of concurrent readers without ever
// touching the scan path, streams per-block updates over SSE, and exposes
// a health probe. The paper's §VII time budget shapes the design — the
// scan loop publishes once per block, readers cost one atomic load each,
// so read traffic ("millions of users") and scan latency are completely
// decoupled.
//
// Endpoints:
//
//	GET /v1/report   latest ranked report (JSON; 503 until the first scan)
//	GET /v1/stream   server-sent events; one `report` event per published scan
//	GET /v1/healthz  service liveness: version, block height, last-scan latency
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"arbloop/internal/feed"
	"arbloop/internal/scan"
)

// stored pairs a decoded report with its marshaled bytes so every reader
// shares one encoding.
type stored struct {
	report ReportJSON
	body   []byte
}

// Store holds the latest encoded report behind an atomic pointer. Writes
// (one per block) marshal once; reads are a single atomic load, safe for
// unbounded concurrency.
type Store struct {
	v atomic.Pointer[stored]
}

// Set encodes and publishes a report, replacing the previous one.
func (s *Store) Set(r ReportJSON) error {
	body, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("server: encode report: %w", err)
	}
	s.v.Store(&stored{report: r, body: body})
	return nil
}

// Latest returns the current encoded report, or ok=false before the
// first Set.
func (s *Store) Latest() (body []byte, report ReportJSON, ok bool) {
	st := s.v.Load()
	if st == nil {
		return nil, ReportJSON{}, false
	}
	return st.body, st.report, true
}

// Health is the /v1/healthz body.
type Health struct {
	// Status is "ok" once a report has been published, "starting" before.
	Status string `json:"status"`
	// Version is the feed version of the latest report.
	Version uint64 `json:"version"`
	// Height is the block height of the latest report.
	Height int64 `json:"height"`
	// Scans counts published reports since start.
	Scans uint64 `json:"scans"`
	// LastScanMillis is the wall-clock latency of the latest scan — the
	// number to watch against the block interval (§VII).
	LastScanMillis float64 `json:"last_scan_ms"`
	// TopologyCacheHit reports whether the latest scan skipped cycle
	// enumeration.
	TopologyCacheHit bool `json:"topology_cache_hit"`
	// Strategy is the optimizer the service runs.
	Strategy string `json:"strategy"`
	// Delta, when the embedder registers a probe (SetDeltaStatsProbe),
	// reports the delta engine's lifetime counters — full captures vs
	// delta scans and the shard wake-up totals — so the fast-path hit
	// rate is observable in production.
	Delta *DeltaHealth `json:"delta,omitempty"`
}

// DeltaHealth is the delta-engine section of /v1/healthz.
type DeltaHealth struct {
	// FullScans and DeltaScans count how scans resolved: a healthy
	// steady state is one full capture followed by delta scans.
	FullScans  uint64 `json:"full_scans"`
	DeltaScans uint64 `json:"delta_scans"`
	// Shards is the current shard count; ShardsScanned the cumulative
	// shards rescanned across all scans (captures contribute every
	// shard, delta scans only the dirty ones).
	Shards        int    `json:"shards"`
	ShardsScanned uint64 `json:"shards_scanned"`
}

// Server serves scan reports. Create with New, publish with Publish, and
// mount Handler on any http server. Safe for concurrent use.
type Server struct {
	store Store

	mu     sync.Mutex
	subs   map[int]chan []byte
	nextID int
	closed bool

	scans        atomic.Uint64
	lastScanNano atomic.Int64

	// deltaStats, when set, is polled per healthz request.
	deltaStats atomic.Pointer[func() scan.DeltaStats]
}

// SetDeltaStatsProbe registers a callback polled on every /v1/healthz
// request to report the scanner's delta-engine counters (use
// Scanner.DeltaStats). Pass nil to unregister. Safe to call at any time.
func (s *Server) SetDeltaStatsProbe(fn func() scan.DeltaStats) {
	if fn == nil {
		s.deltaStats.Store(nil)
		return
	}
	s.deltaStats.Store(&fn)
}

// New builds an empty server; /v1/report returns 503 until the first
// Publish.
func New() *Server {
	return &Server{subs: make(map[int]chan []byte)}
}

// Store exposes the underlying report store (benchmarks and embedders).
func (s *Server) Store() *Store {
	return &s.store
}

// Publish swaps in a new report and fans it out to SSE subscribers.
// elapsed is the scan latency reported by /v1/healthz.
func (s *Server) Publish(r ReportJSON, elapsed time.Duration) error {
	if err := s.store.Set(r); err != nil {
		return err
	}
	s.scans.Add(1)
	s.lastScanNano.Store(int64(elapsed))

	body, _, _ := s.store.Latest()
	s.mu.Lock()
	defer s.mu.Unlock()
	// Coalesce exactly like the pool feed: a slow SSE client gets the
	// newest report, never a backlog of dead ones.
	for _, ch := range s.subs {
		feed.SendCoalesce(ch, body)
	}
	return nil
}

// Close ends every active SSE subscription, letting stream handlers
// return so an http.Server.Shutdown can complete instead of waiting out
// its deadline behind long-lived /v1/stream connections. Publish and the
// non-streaming endpoints keep working (embedders may drain scans after
// closing streams); Close is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for id, ch := range s.subs {
		delete(s.subs, id)
		close(ch)
	}
}

// subscribe registers an SSE subscriber with a coalescing one-report
// buffer. After Close the channel comes back already closed.
func (s *Server) subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, 1)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := s.nextID
	s.nextID++
	s.subs[id] = ch
	s.mu.Unlock()
	return ch, func() {
		s.mu.Lock()
		delete(s.subs, id)
		s.mu.Unlock()
	}
}

// Handler returns the service mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/report", s.handleReport)
	mux.HandleFunc("GET /v1/stream", s.handleStream)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	body, _, ok := s.store.Latest()
	if !ok {
		http.Error(w, `{"error":"no report yet"}`, http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{Status: "starting", Scans: s.scans.Load()}
	if _, rep, ok := s.store.Latest(); ok {
		h.Status = "ok"
		h.Version = rep.Version
		h.Height = rep.Height
		h.TopologyCacheHit = rep.TopologyCacheHit
		h.Strategy = rep.Strategy
	}
	h.LastScanMillis = float64(s.lastScanNano.Load()) / float64(time.Millisecond)
	if probe := s.deltaStats.Load(); probe != nil {
		ds := (*probe)()
		h.Delta = &DeltaHealth{
			FullScans:     ds.FullScans,
			DeltaScans:    ds.DeltaScans,
			Shards:        ds.Shards,
			ShardsScanned: ds.ShardsScanned,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(h)
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ch, cancel := s.subscribe()
	defer cancel()

	// A fresh client sees the current report immediately instead of
	// waiting out the rest of the block interval.
	if body, _, ok := s.store.Latest(); ok {
		if err := writeEvent(w, body); err != nil {
			return
		}
		fl.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case body, ok := <-ch:
			if !ok { // server closed: end the stream
				return
			}
			if err := writeEvent(w, body); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeEvent frames one report as an SSE `report` event.
func writeEvent(w http.ResponseWriter, body []byte) error {
	_, err := fmt.Fprintf(w, "event: report\ndata: %s\n\n", body)
	return err
}
