// Package server is the HTTP face of the live opportunity service. Every
// response is a thin read over an immutable distrib.Frame: the scan loop
// publishes once per block (one JSON marshal, one gzip pass, one SSE
// framing — in distrib.BuildFrame), and readers get the frame by atomic
// pointer swap and serve with a header compare plus a buffer write. The
// paper's §VII time budget shapes the design — read traffic ("millions
// of users") and scan latency are completely decoupled, and the
// steady-state read path performs zero per-request encoding.
//
// Endpoints:
//
//	GET /v1/report   latest ranked report (JSON; 503 until the first scan)
//	                 ?top=N serves the N most profitable loops as a
//	                 pre-sliced prefix of the cached encoding; strong
//	                 ETag/If-None-Match revalidation (304) and cached
//	                 gzip negotiation on the full report
//	GET /v1/stream   server-sent events; one `report` event per published
//	                 scan, with the feed version as event id so clients
//	                 resume via Last-Event-ID. Idle streams carry periodic
//	                 heartbeat comments (WithHeartbeat). Slow consumers
//	                 are evicted past the write deadline.
//	GET /v1/healthz  serving condition (ok|degraded|stale, see Health):
//	                 version, block height, report age, uptime, last-scan
//	                 latency, delta-engine, feed, breaker, and
//	                 connection-tier gauges, plus a flattened telemetry
//	                 summary
//	GET /v1/metrics  the full telemetry registry in Prometheus text
//	                 exposition format (see Server.Telemetry)
package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"arbloop/internal/distrib"
	"arbloop/internal/feed"
	"arbloop/internal/oplog"
	"arbloop/internal/scan"
	"arbloop/internal/source"
	"arbloop/internal/telemetry"
)

// Store holds the latest report committed to every wire representation
// at once (see distrib.Frame). Writes (one per block) encode once; reads
// are a single atomic load, safe for unbounded concurrency.
type Store = distrib.Store

// DefaultWriteTimeout bounds one SSE event write: a client that cannot
// drain an event within it is evicted (the block cadence is seconds, so
// a healthy client is never close).
const DefaultWriteTimeout = 10 * time.Second

// DefaultStaleAfter is the report age past which /v1/healthz degrades
// its status to "stale": generous against a seconds-cadence block loop,
// tight enough that a wedged feed is visible within half a minute.
const DefaultStaleAfter = 30 * time.Second

// DefaultHeartbeat is the idle interval between SSE heartbeat comments
// on /v1/stream — frequent enough to beat common 30–60 s proxy idle
// timeouts, cheap enough to be noise-free (a comment line, no event).
const DefaultHeartbeat = 15 * time.Second

// Health is the /v1/healthz body.
type Health struct {
	// Status is the service's serving condition:
	//
	//	"starting"  no report published yet
	//	"ok"        latest report fresh, every dependency healthy
	//	"degraded"  serving, but on best-effort inputs: the latest report
	//	            ran on fallback prices, a dependency breaker is open,
	//	            or the feed is failing refreshes
	//	"stale"     the latest report is older than the stale-after
	//	            threshold (WithStaleAfter) — the block loop stopped
	//	            producing
	//
	// Monitors must treat unknown future values as unhealthy rather than
	// pattern-matching "ok"/"starting" only.
	Status string `json:"status"`
	// LastUpdateAgeSeconds is the age of the most recently published
	// report, or -1 before the first publish. The number behind the
	// ok→stale transition.
	LastUpdateAgeSeconds float64 `json:"last_update_age_seconds"`
	// Degraded reports whether the latest published report ran on
	// fallback (last-known-good) prices.
	Degraded bool `json:"degraded"`
	// Version is the feed version of the latest report.
	Version uint64 `json:"version"`
	// Height is the block height of the latest report.
	Height int64 `json:"height"`
	// Scans counts published reports since start.
	Scans uint64 `json:"scans"`
	// LastScanMillis is the wall-clock latency of the latest scan — the
	// number to watch against the block interval (§VII).
	LastScanMillis float64 `json:"last_scan_ms"`
	// LastScanDuration is LastScanMillis rendered as a Go duration
	// string ("1.8ms") — the human-friendly twin of the float.
	LastScanDuration string `json:"last_scan_duration"`
	// UptimeSeconds is the time since the Server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// TopologyCacheHit reports whether the latest scan skipped cycle
	// enumeration.
	TopologyCacheHit bool `json:"topology_cache_hit"`
	// Strategy is the optimizer the service runs.
	Strategy string `json:"strategy"`
	// Delta, when the embedder registers a probe (SetDeltaStatsProbe),
	// reports the delta engine's lifetime counters — full captures vs
	// delta scans and the shard wake-up totals — so the fast-path hit
	// rate is observable in production.
	Delta *DeltaHealth `json:"delta,omitempty"`
	// Connections, when the embedder registers a probe
	// (SetConnStatsProbe, or WithConnTracker which registers one),
	// reports the connection tier: active/peak/accepted connections,
	// slow-consumer evictions, the accept limit, and fd-headroom — the
	// gauge to alarm on before accept() hits EMFILE.
	Connections *distrib.ConnStats `json:"connections,omitempty"`
	// Feed, when the embedder registers a probe (SetFeedStatsProbe),
	// reports the pool feed's refresh/failure counters — a rising
	// failures count is the early sign of a flaky source before an
	// exhausted retry budget takes the service down.
	Feed *feed.WatcherStats `json:"feed,omitempty"`
	// Breakers, when the embedder registers a probe
	// (SetBreakerStatsProbe), reports each dependency circuit breaker's
	// state keyed by dependency name (e.g. "prices") — any non-closed
	// entry flips Status to degraded.
	Breakers map[string]source.BreakerState `json:"breakers,omitempty"`
	// Oplog, when the embedder registers a probe (SetOplogStatsProbe),
	// reports the durable opportunity log's counters and write health.
	// A degraded oplog (disk full, I/O errors) flips Status to degraded
	// while the scan loop keeps serving — durability loss is a
	// best-effort condition, not an outage.
	Oplog *oplog.Stats `json:"oplog,omitempty"`
	// Telemetry is the flattened scalar summary of the server's metric
	// registry (counters, gauges, histogram counts and sums in seconds —
	// labeled per-pool/per-shard series are left to /v1/metrics).
	Telemetry map[string]float64 `json:"telemetry,omitempty"`
}

// DeltaHealth is the delta-engine section of /v1/healthz.
type DeltaHealth struct {
	// FullScans and DeltaScans count how scans resolved: a healthy
	// steady state is one full capture followed by delta scans.
	FullScans  uint64 `json:"full_scans"`
	DeltaScans uint64 `json:"delta_scans"`
	// Shards is the current shard count; ShardsScanned the cumulative
	// shards rescanned across all scans (captures contribute every
	// shard, delta scans only the dirty ones).
	Shards        int    `json:"shards"`
	ShardsScanned uint64 `json:"shards_scanned"`
}

// Server serves scan reports. Create with New, publish with Publish, and
// mount Handler on any http server. Safe for concurrent use.
//
// # Probes
//
// The server reports on subsystems it doesn't own — the scanner's delta
// engine, the connection tier, the pool feed — through *probes*: the
// embedder registers a stats callback (SetDeltaStatsProbe,
// SetConnStatsProbe, SetFeedStatsProbe), the callback pointer is held
// behind an atomic so registration is safe at any time, and each
// /v1/healthz request polls whichever probes are present. A section is
// simply absent from the JSON until its probe is registered, so adding
// observability never requires a constructor change — the pattern to
// follow for new sections.
//
// Metrics work the other way around: the server owns one
// telemetry.Registry (Telemetry), subsystems register their counters
// and histograms *into* it (scan.Metrics.Register,
// feed.Watcher.RegisterMetrics, strategy.Telemetry().Register), and
// GET /v1/metrics renders the whole registry in Prometheus text format.
type Server struct {
	store Store
	start time.Time

	mu     sync.Mutex
	subs   map[int]chan *distrib.Frame
	nextID int
	closed bool

	scans        atomic.Uint64
	lastScanNano atomic.Int64
	// lastPublishNano is the wall clock of the most recent Publish — the
	// basis of healthz's last_update_age_seconds and the ok→stale cut.
	lastPublishNano atomic.Int64

	// tracker, when set, receives slow-consumer eviction counts.
	tracker *distrib.Tracker
	// writeTimeout bounds one SSE event write (0 = no deadline).
	writeTimeout time.Duration
	// staleAfter is the report age past which status reads "stale"
	// (0 disables staleness detection).
	staleAfter time.Duration
	// heartbeat is the idle interval between SSE comment lines on
	// /v1/stream (0 disables heartbeats).
	heartbeat time.Duration

	// deltaStats / connStats / feedStats / breakerStats, when set, are
	// polled per healthz request.
	deltaStats   atomic.Pointer[func() scan.DeltaStats]
	connStats    atomic.Pointer[func() distrib.ConnStats]
	feedStats    atomic.Pointer[func() feed.WatcherStats]
	breakerStats atomic.Pointer[func() map[string]source.BreakerState]
	oplogStats   atomic.Pointer[func() oplog.Stats]

	// reg is the server-owned metric registry behind /v1/metrics; the
	// distribution tier's own metrics live alongside whatever the
	// embedder registers.
	reg           *telemetry.Registry
	frameBuild    telemetry.Histogram
	reportPlain   telemetry.Counter
	reportGzip    telemetry.Counter
	reportTop     telemetry.Counter
	report304     telemetry.Counter
	sseEvents     telemetry.Counter
	sseEvictions  telemetry.Counter
	sseHeartbeats telemetry.Counter
}

// Option configures a Server at construction.
type Option func(*Server)

// WithConnTracker wires the connection tier's gauges: SSE slow-consumer
// evictions are counted on t, and t.Stats backs the /v1/healthz
// `connections` section (override or remove with SetConnStatsProbe).
// Share the same tracker with distrib.Limit so accepts, evictions, and
// fd headroom land in one snapshot.
func WithConnTracker(t *distrib.Tracker) Option {
	return func(s *Server) {
		s.tracker = t
		if t != nil {
			s.SetConnStatsProbe(t.Stats)
		}
	}
}

// WithWriteTimeout bounds each SSE event write; a client that cannot
// drain an event within d is evicted (its connection is closed) so a
// stalled reader can never pin buffers or a subscription slot for the
// life of the process. 0 disables the deadline; the default is
// DefaultWriteTimeout.
func WithWriteTimeout(d time.Duration) Option {
	return func(s *Server) { s.writeTimeout = d }
}

// WithStaleAfter sets the report age past which /v1/healthz reports
// "stale" (default DefaultStaleAfter). 0 disables staleness detection —
// status then never leaves ok/degraded once serving.
func WithStaleAfter(d time.Duration) Option {
	return func(s *Server) { s.staleAfter = d }
}

// WithHeartbeat sets the idle interval between SSE heartbeat comments on
// /v1/stream (default DefaultHeartbeat). A heartbeat is a `: heartbeat`
// comment line — invisible to EventSource consumers, but it keeps idle
// connections distinguishable from dead upstreams and defeats proxy idle
// timeouts. 0 disables heartbeats.
func WithHeartbeat(d time.Duration) Option {
	return func(s *Server) { s.heartbeat = d }
}

// SetBreakerStatsProbe registers a callback polled on every /v1/healthz
// request to report dependency circuit-breaker states keyed by
// dependency name (e.g. {"prices": breaker.State()}). Pass nil to
// unregister. Safe to call at any time.
func (s *Server) SetBreakerStatsProbe(fn func() map[string]source.BreakerState) {
	if fn == nil {
		s.breakerStats.Store(nil)
		return
	}
	s.breakerStats.Store(&fn)
}

// SetDeltaStatsProbe registers a callback polled on every /v1/healthz
// request to report the scanner's delta-engine counters (use
// Scanner.DeltaStats). Pass nil to unregister. Safe to call at any time.
func (s *Server) SetDeltaStatsProbe(fn func() scan.DeltaStats) {
	if fn == nil {
		s.deltaStats.Store(nil)
		return
	}
	s.deltaStats.Store(&fn)
}

// SetConnStatsProbe registers a callback polled on every /v1/healthz
// request to report the connection tier's gauges (use Tracker.Stats).
// Pass nil to unregister. Safe to call at any time.
func (s *Server) SetConnStatsProbe(fn func() distrib.ConnStats) {
	if fn == nil {
		s.connStats.Store(nil)
		return
	}
	s.connStats.Store(&fn)
}

// SetFeedStatsProbe registers a callback polled on every /v1/healthz
// request to report the pool feed's refresh/failure counters (use
// Watcher.Stats). Pass nil to unregister. Safe to call at any time.
func (s *Server) SetFeedStatsProbe(fn func() feed.WatcherStats) {
	if fn == nil {
		s.feedStats.Store(nil)
		return
	}
	s.feedStats.Store(&fn)
}

// SetOplogStatsProbe registers a callback polled on every /v1/healthz
// request to report the durable opportunity log's counters and write
// health (use Log.Stats). A degraded log flips the healthz status to
// "degraded". Pass nil to unregister. Safe to call at any time.
func (s *Server) SetOplogStatsProbe(fn func() oplog.Stats) {
	if fn == nil {
		s.oplogStats.Store(nil)
		return
	}
	s.oplogStats.Store(&fn)
}

// New builds an empty server; /v1/report returns 503 until the first
// Publish.
func New(opts ...Option) *Server {
	s := &Server{
		subs:         make(map[int]chan *distrib.Frame),
		writeTimeout: DefaultWriteTimeout,
		staleAfter:   DefaultStaleAfter,
		heartbeat:    DefaultHeartbeat,
		start:        time.Now(),
		reg:          telemetry.NewRegistry(),
	}
	for _, o := range opts {
		o(s)
	}
	s.registerMetrics()
	return s
}

// registerMetrics exposes the distribution tier's own metrics on the
// server registry.
func (s *Server) registerMetrics() {
	s.reg.Gauge("arbloop_uptime_seconds", "", "seconds since the server was constructed",
		func() float64 { return time.Since(s.start).Seconds() })
	s.reg.Gauge("arbloop_scans_published_total", "", "reports published into the frame store",
		func() float64 { return float64(s.scans.Load()) })
	s.reg.Gauge("arbloop_last_scan_seconds", "", "wall latency of the most recently published scan",
		func() float64 { return float64(s.lastScanNano.Load()) / float64(time.Second) })
	s.reg.Histogram("arbloop_frame_build_seconds", "", "time to encode one report into its immutable frame", &s.frameBuild)
	const reqHelp = "/v1/report responses by served variant"
	s.reg.Counter("arbloop_report_requests_total", `variant="plain"`, reqHelp, &s.reportPlain)
	s.reg.Counter("arbloop_report_requests_total", `variant="gzip"`, reqHelp, &s.reportGzip)
	s.reg.Counter("arbloop_report_requests_total", `variant="top"`, reqHelp, &s.reportTop)
	s.reg.Counter("arbloop_report_requests_total", `variant="not_modified"`, reqHelp, &s.report304)
	s.reg.Counter("arbloop_sse_events_total", "", "SSE report events written to subscribers", &s.sseEvents)
	s.reg.Counter("arbloop_sse_evictions_total", "", "SSE subscribers evicted past the write deadline", &s.sseEvictions)
	s.reg.Counter("arbloop_sse_heartbeats_total", "", "SSE heartbeat comments written on idle streams", &s.sseHeartbeats)
	s.reg.Gauge("arbloop_report_age_seconds", "", "age of the most recently published report (-1 before the first)",
		func() float64 { return s.reportAge().Seconds() })
}

// reportAge returns the age of the latest published report, or -1 before
// the first publish.
func (s *Server) reportAge() time.Duration {
	nano := s.lastPublishNano.Load()
	if nano == 0 {
		return -time.Second
	}
	return time.Since(time.Unix(0, nano))
}

// Telemetry returns the server-owned metric registry: the mount point
// for subsystem metrics (scanner, feed, solver) and the source behind
// GET /v1/metrics, the healthz telemetry section, and — via
// telemetry.Registry.PublishExpvar — the pprof listener's /debug/vars.
func (s *Server) Telemetry() *telemetry.Registry {
	return s.reg
}

// Store exposes the underlying report store (benchmarks and embedders).
func (s *Server) Store() *Store {
	return &s.store
}

// Publish commits the report to one immutable frame — the block's single
// encode — swaps it in, and fans it out to SSE subscribers. elapsed is
// the scan latency reported by /v1/healthz.
func (s *Server) Publish(r ReportJSON, elapsed time.Duration) error {
	buildStart := time.Now()
	f, err := distrib.BuildFrame(r)
	if err != nil {
		return err
	}
	s.frameBuild.Observe(time.Since(buildStart))
	s.store.SetFrame(f)
	s.scans.Add(1)
	s.lastScanNano.Store(int64(elapsed))
	s.lastPublishNano.Store(time.Now().UnixNano())

	s.mu.Lock()
	defer s.mu.Unlock()
	// Coalesce exactly like the pool feed: a slow SSE client gets the
	// newest frame, never a backlog of dead ones.
	for _, ch := range s.subs {
		feed.SendCoalesce(ch, f)
	}
	return nil
}

// Close ends every active SSE subscription, letting stream handlers
// return so an http.Server.Shutdown can complete instead of waiting out
// its deadline behind long-lived /v1/stream connections. Publish and the
// non-streaming endpoints keep working (embedders may drain scans after
// closing streams); Close is idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	for id, ch := range s.subs {
		delete(s.subs, id)
		close(ch)
	}
}

// subscribe registers an SSE subscriber with a coalescing one-frame
// buffer. After Close the channel comes back already closed.
func (s *Server) subscribe() (<-chan *distrib.Frame, func()) {
	ch := make(chan *distrib.Frame, 1)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := s.nextID
	s.nextID++
	s.subs[id] = ch
	s.mu.Unlock()
	return ch, func() {
		s.mu.Lock()
		delete(s.subs, id)
		s.mu.Unlock()
	}
}

// Handler returns the service mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/report", s.handleReport)
	mux.HandleFunc("GET /v1/stream", s.handleStream)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// writeJSONError emits an error body that is itself valid JSON with the
// right Content-Type (http.Error would label it text/plain).
func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}

// acceptsGzip reports whether the request negotiates gzip encoding.
func acceptsGzip(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept-Encoding"), "gzip")
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	f := s.store.Frame()
	if f == nil {
		writeJSONError(w, http.StatusServiceUnavailable, "no report yet")
		return
	}
	body, tail, etag := f.Raw, []byte(nil), f.ETag
	// The steady-state path (no query) skips parsing entirely; ?top=N
	// re-slices the cached encoding — never a re-encode.
	if r.URL.RawQuery != "" {
		n, err := topParam(r)
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, err.Error())
			return
		}
		body, tail, etag = f.Top(n)
	}
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Vary", "Accept-Encoding")
	h.Set("Cache-Control", "no-cache")
	// Age (RFC 9111 §5.1): seconds since this report was published, so a
	// client can judge freshness without parsing the body. Paired with
	// the healthz stale threshold — a large Age on a 200 is the "served
	// but stale" signal.
	if age := s.reportAge(); age >= 0 {
		h.Set("Age", strconv.FormatInt(int64(age.Seconds()), 10))
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" && distrib.ETagMatches(inm, etag) {
		s.report304.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", "application/json")
	if tail == nil && acceptsGzip(r) {
		// Full report only: the gzip variant is compressed once per
		// block, prefix slices are served identity-encoded.
		s.reportGzip.Inc()
		h.Set("Content-Encoding", "gzip")
		h.Set("Content-Length", strconv.Itoa(len(f.Gzip)))
		_, _ = w.Write(f.Gzip)
		return
	}
	if tail != nil {
		s.reportTop.Inc()
	} else {
		s.reportPlain.Inc()
	}
	h.Set("Content-Length", strconv.Itoa(len(body)+len(tail)))
	_, _ = w.Write(body)
	if tail != nil {
		_, _ = w.Write(tail)
	}
}

// topParam extracts ?top=N. 0 (or absence) means the full report;
// negative or malformed values are a client error.
func topParam(r *http.Request) (int, error) {
	v := r.URL.Query().Get("top")
	if v == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, errors.New("top must be a non-negative integer")
	}
	return n, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := Health{Status: "starting", Scans: s.scans.Load(), LastUpdateAgeSeconds: -1}
	served := false
	if f := s.store.Frame(); f != nil {
		served = true
		h.Status = "ok"
		h.Version = f.Report.Version
		h.Height = f.Report.Height
		h.TopologyCacheHit = f.Report.TopologyCacheHit
		h.Strategy = f.Report.Strategy
		h.Degraded = f.Report.Degraded
	}
	if age := s.reportAge(); age >= 0 {
		h.LastUpdateAgeSeconds = age.Seconds()
	}
	lastScan := time.Duration(s.lastScanNano.Load())
	h.LastScanMillis = float64(lastScan) / float64(time.Millisecond)
	h.LastScanDuration = lastScan.String()
	h.UptimeSeconds = time.Since(s.start).Seconds()
	h.Telemetry = s.reg.Summary()
	if probe := s.feedStats.Load(); probe != nil {
		fs := (*probe)()
		h.Feed = &fs
	}
	if probe := s.breakerStats.Load(); probe != nil {
		h.Breakers = (*probe)()
	}
	if probe := s.oplogStats.Load(); probe != nil {
		os := (*probe)()
		h.Oplog = &os
	}
	// Status derivation, worst condition wins: stale (report older than
	// the threshold — the loop stopped producing) over degraded (still
	// producing, but on fallback prices, an open breaker, a failing
	// feed, or a durability-losing oplog) over ok.
	if served {
		switch {
		case s.staleAfter > 0 && s.reportAge() > s.staleAfter:
			h.Status = "stale"
		case h.Degraded,
			anyBreakerNotClosed(h.Breakers),
			h.Feed != nil && h.Feed.ConsecutiveFailures > 0,
			h.Oplog != nil && h.Oplog.Degraded:
			h.Status = "degraded"
		}
	}
	if probe := s.deltaStats.Load(); probe != nil {
		ds := (*probe)()
		h.Delta = &DeltaHealth{
			FullScans:     ds.FullScans,
			DeltaScans:    ds.DeltaScans,
			Shards:        ds.Shards,
			ShardsScanned: ds.ShardsScanned,
		}
	}
	if probe := s.connStats.Load(); probe != nil {
		cs := (*probe)()
		h.Connections = &cs
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(h)
}

// anyBreakerNotClosed reports whether any dependency breaker is open or
// half-open.
func anyBreakerNotClosed(m map[string]source.BreakerState) bool {
	for _, b := range m {
		if b.State != source.BreakerClosed {
			return true
		}
	}
	return false
}

// heartbeatComment is the SSE comment line written on idle streams: a
// field-less line EventSource clients ignore, but proxies and liveness
// checks see bytes moving.
var heartbeatComment = []byte(": heartbeat\n\n")

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSONError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	// writeFrame pushes one pre-framed event under the write deadline.
	// A client stalled past it is evicted: the deadline poisons the
	// connection, the handler returns, and net/http tears it down —
	// healthy subscribers are untouched.
	writeFrame := func(f *distrib.Frame) error {
		if s.writeTimeout > 0 {
			_ = rc.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		}
		_, err := w.Write(f.SSE)
		if err == nil {
			err = rc.Flush()
			s.sseEvents.Inc()
		}
		if err != nil && errors.Is(err, os.ErrDeadlineExceeded) {
			s.sseEvictions.Inc()
			if s.tracker != nil {
				s.tracker.Evict()
			}
		}
		return err
	}

	// writeHeartbeat pushes one comment line under the same deadline and
	// eviction rules as a report event.
	writeHeartbeat := func() error {
		if s.writeTimeout > 0 {
			_ = rc.SetWriteDeadline(time.Now().Add(s.writeTimeout))
		}
		_, err := w.Write(heartbeatComment)
		if err == nil {
			err = rc.Flush()
			s.sseHeartbeats.Inc()
		}
		if err != nil && errors.Is(err, os.ErrDeadlineExceeded) {
			s.sseEvictions.Inc()
			if s.tracker != nil {
				s.tracker.Evict()
			}
		}
		return err
	}

	ch, cancel := s.subscribe()
	defer cancel()

	// Heartbeats let a client (and any proxy between) distinguish "no
	// opportunities published lately" from "dead upstream": with no
	// report flowing, a comment still moves every heartbeat interval.
	var hb <-chan time.Time
	if s.heartbeat > 0 {
		t := time.NewTicker(s.heartbeat)
		defer t.Stop()
		hb = t.C
	}

	// A fresh client sees the current report immediately instead of
	// waiting out the rest of the block interval — unless it reconnected
	// with Last-Event-ID naming the frame it already has.
	lastID := r.Header.Get("Last-Event-ID")
	if f := s.store.Frame(); f != nil && f.EventID != lastID {
		if err := writeFrame(f); err != nil {
			return
		}
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-hb:
			if err := writeHeartbeat(); err != nil {
				return
			}
		case f, ok := <-ch:
			if !ok { // server closed: end the stream
				return
			}
			if err := writeFrame(f); err != nil {
				return
			}
		}
	}
}
