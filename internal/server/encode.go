// The report wire encoding lives in internal/distrib (the distribution
// tier owns every client-facing byte — its frame builder pre-slices the
// exact layout). These aliases keep the server package the one import
// embedders and the CLI need.
package server

import (
	"arbloop/internal/distrib"
	"arbloop/internal/scan"
)

// ResultJSON is the wire encoding of one scanned loop.
type ResultJSON = distrib.ResultJSON

// ReportJSON is the wire encoding of one ranked scan report.
type ReportJSON = distrib.ReportJSON

// Encode converts a scan report into its wire form. version and height
// stamp the feed coordinates (pass zeros for one-shot scans).
func Encode(rep scan.Report, version uint64, height int64) ReportJSON {
	return distrib.Encode(rep, version, height)
}
