// Tests for the live serving surface of the Scanner — versioned scans,
// watch streams — and the goroutine hygiene of the streaming paths: a
// cancelled or abandoned stream must wind its worker pool down to
// nothing, because a block-driven service starts one scan per block
// forever and any per-scan leak is a slow death.
package arbloop_test

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"arbloop"
)

// livePools builds the paper's Section V three-pool market as a static
// source plus matching prices.
func livePools(t *testing.T) (arbloop.StaticPools, arbloop.PriceSource) {
	t.Helper()
	specs := []struct {
		id, t0, t1 string
		r0, r1     float64
	}{
		{"p1", "X", "Y", 100, 200},
		{"p2", "Y", "Z", 300, 200},
		{"p3", "Z", "X", 200, 400},
	}
	pools := make(arbloop.StaticPools, len(specs))
	for i, s := range specs {
		p, err := arbloop.NewPool(s.id, s.t0, s.t1, s.r0, s.r1, arbloop.DefaultFee)
		if err != nil {
			t.Fatal(err)
		}
		pools[i] = p
	}
	return pools, arbloop.NewStaticOracle(map[string]float64{"X": 2, "Y": 10.2, "Z": 20})
}

func TestScanVersionedUsesTopologyCache(t *testing.T) {
	pools, prices := livePools(t)
	sc, err := arbloop.NewScanner(pools, prices)
	if err != nil {
		t.Fatal(err)
	}
	w := arbloop.NewWatcher(pools)
	ctx := context.Background()

	u1, err := w.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	vr1, err := sc.ScanVersioned(ctx, u1)
	if err != nil {
		t.Fatal(err)
	}
	if vr1.Version != 1 || vr1.Report.TopologyCacheHit {
		t.Errorf("first scan = v%d hit=%v, want v1 cold", vr1.Version, vr1.Report.TopologyCacheHit)
	}
	if vr1.Report.LoopsDetected != 1 {
		t.Errorf("loops = %d", vr1.Report.LoopsDetected)
	}

	u2, err := w.Refresh(ctx)
	if err != nil {
		t.Fatal(err)
	}
	vr2, err := sc.ScanVersioned(ctx, u2)
	if err != nil {
		t.Fatal(err)
	}
	if vr2.Version != 2 || !vr2.Report.TopologyCacheHit {
		t.Errorf("second scan = v%d hit=%v, want v2 warm", vr2.Version, vr2.Report.TopologyCacheHit)
	}
	if vr2.Report.Results[0].Result.Monetized != vr1.Report.Results[0].Result.Monetized {
		t.Error("warm scan changed the result on identical state")
	}
}

func TestScannerPlainScanAlsoWarmsCache(t *testing.T) {
	pools, prices := livePools(t)
	sc, err := arbloop.NewScanner(pools, prices)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	first, err := sc.Scan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sc.Scan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if first.TopologyCacheHit || !second.TopologyCacheHit {
		t.Errorf("hits = %v,%v; want cold then warm", first.TopologyCacheHit, second.TopologyCacheHit)
	}
}

func TestWithTopologyCacheDisable(t *testing.T) {
	pools, prices := livePools(t)
	sc, err := arbloop.NewScanner(pools, prices, arbloop.WithTopologyCache(-1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		rep, err := sc.Scan(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.TopologyCacheHit {
			t.Errorf("scan %d hit a disabled cache", i)
		}
	}
}

func TestWithMaxCyclesGuard(t *testing.T) {
	pools, prices := livePools(t)
	// Add a second X–Z pool: the market now has more than one cycle.
	extra, err := arbloop.NewPool("p4", "X", "Z", 300, 300, arbloop.DefaultFee)
	if err != nil {
		t.Fatal(err)
	}
	dense := append(arbloop.StaticPools{}, pools...)
	dense = append(dense, extra)

	sc, err := arbloop.NewScanner(dense, prices, arbloop.WithMaxCycles(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Scan(context.Background()); err == nil {
		t.Error("dense market passed a MaxCycles(1) guard")
	}
	sc, err = arbloop.NewScanner(dense, prices)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Scan(context.Background()); err != nil {
		t.Errorf("unlimited scan failed: %v", err)
	}
}

func TestWatchEmitsPerUpdate(t *testing.T) {
	pools, prices := livePools(t)
	sc, err := arbloop.NewScanner(pools, prices)
	if err != nil {
		t.Fatal(err)
	}
	w := arbloop.NewWatcher(pools)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	reports := sc.Watch(ctx, w)
	if _, err := w.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case vr := <-reports:
		if vr.Err != nil {
			t.Fatal(vr.Err)
		}
		if vr.Version != 1 || vr.Report.LoopsDetected != 1 {
			t.Errorf("watch report = v%d loops=%d", vr.Version, vr.Report.LoopsDetected)
		}
		if vr.Elapsed <= 0 {
			t.Error("missing scan latency")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no report from watch")
	}

	// Closing the watcher ends the stream.
	w.Close()
	select {
	case _, ok := <-reports:
		if ok {
			// One buffered report may still be in flight; the close must
			// follow.
			if _, ok := <-reports; ok {
				t.Error("watch stream still open after watcher close")
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch stream did not close")
	}
}

// slowStrategy delays every optimization so streams can be cancelled
// mid-flight deterministically.
type slowStrategy struct {
	delay   time.Duration
	started atomic.Int32
}

func (s *slowStrategy) Name() string { return "SlowMaxMax" }

func (s *slowStrategy) Optimize(ctx context.Context, l *arbloop.Loop, p arbloop.PriceMap) (arbloop.Result, error) {
	s.started.Add(1)
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return arbloop.Result{}, ctx.Err()
	}
	return arbloop.MaxMax(l, p)
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline (with scheduling slack), dumping stacks on timeout.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			m := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, baseline, buf[:m])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestScanStreamCancelMidStreamNoLeak(t *testing.T) {
	snap := filteredSnapshot(t) // §VI market: 123 loops, enough in-flight work
	src := arbloop.FromSnapshot(snap)
	sc, err := arbloop.NewScanner(src, src,
		arbloop.WithStrategy(&slowStrategy{delay: 2 * time.Millisecond}),
		arbloop.WithParallelism(8),
	)
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	stream := sc.ScanStream(ctx)
	// Consume a couple of results so workers are demonstrably mid-run,
	// then cancel and drain to the close.
	for i := 0; i < 2; i++ {
		if r, ok := <-stream; !ok {
			t.Fatal("stream closed early")
		} else if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	cancel()
	for range stream {
	}
	waitGoroutines(t, baseline)
}

func TestScanStreamAbandonedNoLeak(t *testing.T) {
	snap := filteredSnapshot(t)
	src := arbloop.FromSnapshot(snap)
	strat := &slowStrategy{delay: time.Millisecond}
	sc, err := arbloop.NewScanner(src, src,
		arbloop.WithStrategy(strat),
		arbloop.WithParallelism(8),
	)
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	// Abandon the stream entirely — read nothing — and cancel. The
	// detection goroutine, the feeder, and every worker must exit even
	// though no one ever drains the channel.
	ctx, cancel := context.WithCancel(context.Background())
	_ = sc.ScanStream(ctx)
	for strat.started.Load() == 0 { // ensure workers actually launched
		time.Sleep(time.Millisecond)
	}
	cancel()
	waitGoroutines(t, baseline)
}

func TestWatchCancelNoLeak(t *testing.T) {
	pools, prices := livePools(t)
	sc, err := arbloop.NewScanner(pools, prices)
	if err != nil {
		t.Fatal(err)
	}
	w := arbloop.NewWatcher(pools)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	reports := sc.Watch(ctx, w)
	if _, err := w.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	<-reports
	cancel()
	for range reports {
	}
	waitGoroutines(t, baseline)
}
