// Benchmarks regenerating every figure and table of the paper, plus the
// ablations called out in DESIGN.md §4. Run with:
//
//	go test -bench=. -benchmem
//
// Naming follows the per-experiment index: BenchmarkFigNN regenerates the
// data behind figure NN; BenchmarkTableTN the scalar tables; the
// BenchmarkAblation* family compares design alternatives.
package arbloop_test

import (
	"context"
	"math/big"
	"sync"
	"testing"

	"arbloop/internal/amm"
	"arbloop/internal/bot"
	"arbloop/internal/cex"
	"arbloop/internal/chain"
	"arbloop/internal/cycles"
	"arbloop/internal/experiments"
	"arbloop/internal/market"
	"arbloop/internal/pathfind"
	"arbloop/internal/source"
	"arbloop/internal/strategy"
)

// BenchmarkFig01 samples the Fig. 1 profit curve (Section V loop).
func BenchmarkFig01(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(121); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig02 runs the P_x sweep behind Fig. 2 (per-start profits and
// the MaxMax envelope; 101 price points as in the paper).
func BenchmarkFig02(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig03 regenerates Fig. 3 (MaxMax vs ConvexOptimization over
// the P_x sweep). Dominated by 101 barrier solves.
func BenchmarkFig03(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig04 regenerates Fig. 4 (convex net-token composition).
func BenchmarkFig04(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// pipelineFixture caches the §VI pipelines so the per-figure benchmarks
// measure figure regeneration (strategies + extraction), not repeated
// snapshot generation.
var pipelineFixture struct {
	once sync.Once
	len3 *experiments.PipelineResult
	len4 *experiments.PipelineResult
	err  error
}

func pipelines(b *testing.B) (*experiments.PipelineResult, *experiments.PipelineResult) {
	b.Helper()
	pipelineFixture.once.Do(func() {
		pipelineFixture.len3, pipelineFixture.err = experiments.RunPipeline(experiments.PipelineConfig{LoopLen: 3})
		if pipelineFixture.err != nil {
			return
		}
		pipelineFixture.len4, pipelineFixture.err = experiments.RunPipeline(experiments.PipelineConfig{LoopLen: 4})
	})
	if pipelineFixture.err != nil {
		b.Fatal(pipelineFixture.err)
	}
	return pipelineFixture.len3, pipelineFixture.len4
}

// BenchmarkFig05Pipeline regenerates Fig. 5's underlying data: the full
// length-3 empirical pipeline (detection + all strategies on 123 loops).
func BenchmarkFig05Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPipeline(experiments.PipelineConfig{LoopLen: 3})
		if err != nil {
			b.Fatal(err)
		}
		if pts := experiments.Fig5(res); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFig06 extracts the MaxPrice-vs-MaxMax scatter from the cached
// pipeline.
func BenchmarkFig06(b *testing.B) {
	len3, _ := pipelines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := experiments.Fig6(len3); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFig07 extracts the Convex-vs-MaxMax scatter.
func BenchmarkFig07(b *testing.B) {
	len3, _ := pipelines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := experiments.Fig7(len3); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFig08 extracts the net-token comparison rows.
func BenchmarkFig08(b *testing.B) {
	len3, _ := pipelines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := experiments.Fig8(len3); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkFig09 extracts the length-4 Traditional-vs-Convex scatter.
func BenchmarkFig09(b *testing.B) {
	_, len4 := pipelines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := experiments.Fig9(len4); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFig10 extracts the length-4 MaxMax-vs-Convex scatter.
func BenchmarkFig10(b *testing.B) {
	_, len4 := pipelines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := experiments.Fig10(len4); len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkTableT1 recomputes the Section V worked example.
func BenchmarkTableT1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableT1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableT2 regenerates the §VI graph statistics (snapshot,
// filters, loop counts).
func BenchmarkTableT2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableT2(market.DefaultGeneratorConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableT3MaxMaxLen10 measures MaxMax on a length-10 loop (§VII:
// milliseconds level).
func BenchmarkTableT3MaxMaxLen10(b *testing.B) {
	loop, prices, err := experiments.SyntheticLoop(10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := strategy.MaxMax(loop, prices); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableT3ConvexLen10 measures the barrier solve on a length-10
// loop (§VII: the convex strategy is the slow one).
func BenchmarkTableT3ConvexLen10(b *testing.B) {
	loop, prices, err := experiments.SyntheticLoop(10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := strategy.Convex(loop, prices, strategy.ConvexOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableT3Scaling regenerates the full runtime table.
func BenchmarkTableT3Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableT3([]int{3, 6, 10}, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §4) ---

func ablationLoop(b *testing.B) (*strategy.Loop, strategy.PriceMap) {
	b.Helper()
	loop, prices, err := experiments.SyntheticLoop(5)
	if err != nil {
		b.Fatal(err)
	}
	return loop, prices
}

// BenchmarkAblationOptimizerClosedForm: Δ* via the Möbius closed form.
func BenchmarkAblationOptimizerClosedForm(b *testing.B) {
	loop, _ := ablationLoop(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := strategy.OptimalInputClosedForm(loop); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOptimizerBisection: Δ* via bisection on F'(Δ)=1, the
// method the paper describes in §III.
func BenchmarkAblationOptimizerBisection(b *testing.B) {
	loop, _ := ablationLoop(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := strategy.OptimalInputBisection(loop); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOptimizerGolden: Δ* via golden-section maximization.
func BenchmarkAblationOptimizerGolden(b *testing.B) {
	loop, _ := ablationLoop(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := strategy.OptimalInputGolden(loop); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationProblem7 solves the equality-constrained problem (7),
// which reduces to the single-start closed form.
func BenchmarkAblationProblem7(b *testing.B) {
	loop, prices := ablationLoop(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := strategy.MaxMax(loop, prices); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationProblem8 solves the relaxed problem (8) with the
// barrier method; the paper's theory says it can only do better, at a
// runtime cost this pair of benchmarks quantifies.
func BenchmarkAblationProblem8(b *testing.B) {
	loop, prices := ablationLoop(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := strategy.Convex(loop, prices, strategy.ConvexOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Convex solver paths (`make bench-convex`) ---
//
// The BenchmarkConvex* family compares the three ways one problem-(8)
// solve can run: the generic dense barrier solver (closure constraints,
// O(n³) Cholesky), the structured fast path (analytic curves, O(n)
// cyclic Newton, pooled scratch), and the structured path warm-started
// from a previous optimum — the delta-scan configuration.

func benchmarkConvexSolve(b *testing.B, length int, opts strategy.ConvexOptions) {
	loop, prices, err := experiments.SyntheticLoop(length)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := strategy.Convex(loop, prices, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvexGenericLen3(b *testing.B) {
	benchmarkConvexSolve(b, 3, strategy.ConvexOptions{Generic: true})
}

func BenchmarkConvexStructuredLen3(b *testing.B) {
	benchmarkConvexSolve(b, 3, strategy.ConvexOptions{})
}

func BenchmarkConvexGenericLen10(b *testing.B) {
	benchmarkConvexSolve(b, 10, strategy.ConvexOptions{Generic: true})
}

func BenchmarkConvexStructuredLen10(b *testing.B) {
	benchmarkConvexSolve(b, 10, strategy.ConvexOptions{})
}

func BenchmarkConvexWarmLen3(b *testing.B) {
	loop, prices, err := experiments.SyntheticLoop(3)
	if err != nil {
		b.Fatal(err)
	}
	prev, err := strategy.Convex(loop, prices, strategy.ConvexOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := strategy.ConvexWarm(loop, prices, strategy.ConvexOptions{}, &prev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCycleDFS enumerates length-3 cycles by bounded DFS.
func BenchmarkAblationCycleDFS(b *testing.B) {
	len3, _ := pipelines(b)
	g := len3.Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cycles.Enumerate(g, 3, 3, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCycleJohnson enumerates length-≤3 circuits with
// Johnson's algorithm.
func BenchmarkAblationCycleJohnson(b *testing.B) {
	len3, _ := pipelines(b)
	g := len3.Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cycles.Johnson(g, 3, true, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCycleBellmanFord finds one arbitrage loop with
// Bellman–Ford–Moore (the just-in-time detection of related work).
func BenchmarkAblationCycleBellmanFord(b *testing.B) {
	len3, _ := pipelines(b)
	g := len3.Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cycles.BellmanFordMoore(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSwapAnalytic measures the float64 swap evaluation.
func BenchmarkAblationSwapAnalytic(b *testing.B) {
	loop, _ := ablationLoop(b)
	pool := loop.Hop(0).Pool
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.AmountOut(pool.Token0, 25); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSwapExactPair measures the exact big.Int pair swap the
// chain simulator uses.
func BenchmarkAblationSwapExactPair(b *testing.B) {
	rin := big.NewInt(1_000_000_000)
	rout := big.NewInt(2_000_000_000)
	in := big.NewInt(25_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := amm.GetAmountOut(in, rin, rout, amm.DefaultFeeBps); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension experiments (EXPERIMENTS.md "Extensions") ---

// BenchmarkExtGapSweep regenerates the Convex−MaxMax gap sweep.
func BenchmarkExtGapSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtGapSweep(59); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtGapRandom regenerates the random-loop gap study.
func BenchmarkExtGapRandom(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtGapRandom(100, 20230901); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtRisky compares the risk-free and shorting-allowed optima on
// the cached empirical pipeline.
func BenchmarkExtRisky(b *testing.B) {
	len3, _ := pipelines(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtRisky(len3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtBotDecay runs the full 20-block bot-convergence experiment
// (detection + optimization + atomic execution per block).
func BenchmarkExtBotDecay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtBotDecay(20, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtSteadyState runs the bot against continuous retail flow.
func BenchmarkExtSteadyState(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtSteadyState(10, 10, 0.01, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Order-routing substrate (related work [8]) ---

// BenchmarkRoutingBestRoute finds the best WETH→WBTC route (≤ 3 hops) on
// the calibrated 51-token graph.
func BenchmarkRoutingBestRoute(b *testing.B) {
	len3, _ := pipelines(b)
	g := len3.Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pathfind.BestRoute(g, "WETH", "WBTC", 10, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoutingOptimalSplit water-fills an input across the top WETH→
// WBTC routes.
func BenchmarkRoutingOptimalSplit(b *testing.B) {
	len3, _ := pipelines(b)
	routes, err := pathfind.AllRoutes(len3.Graph, "WETH", "WBTC", 10, 3)
	if err != nil {
		b.Fatal(err)
	}
	k := 4
	if len(routes) < k {
		k = len(routes)
	}
	maps := make([]amm.Mobius, k)
	for i := 0; i < k; i++ {
		maps[i] = routes[i].Map
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pathfind.OptimalSplit(maps, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Bot execution-mode ablation ---

func botForBench(b *testing.B, reoptimize bool) *bot.Bot {
	b.Helper()
	snap, err := market.Generate(market.DefaultGeneratorConfig())
	if err != nil {
		b.Fatal(err)
	}
	filtered := snap.FilterPools(30_000, 100)
	state := chain.NewState(0)
	if err := source.MirrorToChain(state, filtered, 1_000_000); err != nil {
		b.Fatal(err)
	}
	engine, err := bot.New(state, cex.NewStatic(filtered.PricesUSD), bot.Config{
		MaxExecutionsPerBlock: 3,
		MinProfitUSD:          0.05,
		Reoptimize:            reoptimize,
	})
	if err != nil {
		b.Fatal(err)
	}
	return engine
}

// BenchmarkAblationBotNaive measures one bot block in batch mode (plans
// computed once against pre-block state).
func BenchmarkAblationBotNaive(b *testing.B) {
	engine := botForBench(b, false)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Step(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBotReoptimize measures one bot block with sequential
// re-detection after each execution (no stale plans, ~3× the detection
// work).
func BenchmarkAblationBotReoptimize(b *testing.B) {
	engine := botForBench(b, true)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Step(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
