package arbloop_test

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"arbloop"
	"arbloop/internal/server"
)

// mutableMarket is a PoolSource whose reserves tests move between
// refreshes — the feed-driven equivalent of retail flow.
type mutableMarket struct {
	mu    sync.Mutex
	pools []*arbloop.Pool
}

func newMutableMarket(t testing.TB) (*mutableMarket, arbloop.PriceSource) {
	t.Helper()
	snap, err := arbloop.GenerateMarket(arbloop.DefaultGeneratorConfig())
	if err != nil {
		t.Fatal(err)
	}
	filtered := snap.FilterPools(30_000, 100)
	src := arbloop.FromSnapshot(filtered)
	pools, err := src.Pools(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return &mutableMarket{pools: pools}, src
}

func (m *mutableMarket) Pools(ctx context.Context) ([]*arbloop.Pool, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*arbloop.Pool, len(m.pools))
	for i, p := range m.pools {
		np, err := arbloop.NewPool(p.ID, p.Token0, p.Token1, p.Reserve0, p.Reserve1, p.Fee)
		if err != nil {
			return nil, err
		}
		out[i] = np
	}
	return out, nil
}

// trade moves the reserves of n random pools, preserving topology.
func (m *mutableMarket) trade(t testing.TB, rng *rand.Rand, n int) {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, i := range rng.Perm(len(m.pools))[:n] {
		p := m.pools[i]
		np, err := arbloop.NewPool(p.ID, p.Token0, p.Token1,
			p.Reserve0*(0.95+0.1*rng.Float64()), p.Reserve1*(0.95+0.1*rng.Float64()), p.Fee)
		if err != nil {
			t.Fatal(err)
		}
		m.pools[i] = np
	}
}

// normalize blanks the delta-path bookkeeping so delta and full reports
// can be compared field-for-field through the wire encoding.
func normalize(rep arbloop.ScanReport) server.ReportJSON {
	rep.TopologyCacheHit = false
	rep.LoopsReoptimized = 0
	rep.LoopsReused = 0
	rep.ShardsScanned = 0
	return server.Encode(rep, 0, 0)
}

// TestScanDeltaMatchesFullScanOverFeed drives the full public stack —
// Watcher dirty sets included — over random reserve updates and asserts
// every delta report is identical to a full scan of the same update.
func TestScanDeltaMatchesFullScanOverFeed(t *testing.T) {
	market, prices := newMutableMarket(t)
	rng := rand.New(rand.NewSource(41))

	deltaSc, err := arbloop.NewScanner(market, prices)
	if err != nil {
		t.Fatal(err)
	}
	fullSc, err := arbloop.NewScanner(market, prices, arbloop.WithDeltaScans(false))
	if err != nil {
		t.Fatal(err)
	}

	w := arbloop.NewWatcher(market)
	ctx := context.Background()
	sawReuse := false
	for round := 0; round < 6; round++ {
		if round > 0 {
			market.trade(t, rng, 1+rng.Intn(6))
		}
		u, err := w.Refresh(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if round > 0 && u.ChangedPools == nil {
			t.Fatalf("round %d: reserve-only update has no dirty set", round)
		}

		delta, err := deltaSc.ScanDelta(ctx, u)
		if err != nil {
			t.Fatal(err)
		}
		full, err := fullSc.ScanDelta(ctx, u) // delta disabled → full scan
		if err != nil {
			t.Fatal(err)
		}
		if full.Report.LoopsReused != 0 {
			t.Fatalf("round %d: WithDeltaScans(false) scanner reused %d loops", round, full.Report.LoopsReused)
		}
		if got, want := normalize(delta.Report), normalize(full.Report); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: delta report differs from full scan\ndelta: %+v\nfull:  %+v", round, got, want)
		}
		if delta.Report.LoopsReused > 0 {
			sawReuse = true
		}
	}
	if !sawReuse {
		t.Error("no round reused any loop — the delta path never engaged")
	}
}

// TestScanDeltaConcurrent exercises concurrent ScanDelta and Watch calls
// on one scanner under the race detector: the delta state must serialize
// internally while reports stay well-formed.
func TestScanDeltaConcurrent(t *testing.T) {
	market, prices := newMutableMarket(t)
	sc, err := arbloop.NewScanner(market, prices)
	if err != nil {
		t.Fatal(err)
	}
	w := arbloop.NewWatcher(market)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var wg sync.WaitGroup
	// Two Watch consumers share the scanner (and therefore its delta state).
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for vr := range sc.Watch(ctx, w) {
				if vr.Err == nil && vr.Report.LoopsReoptimized+vr.Report.LoopsReused != vr.Report.LoopsDetected {
					t.Errorf("counters do not partition: %+v", vr.Report)
				}
			}
		}()
	}
	// Two direct ScanDelta callers race the watchers.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				u := w.Latest()
				if u.Version == 0 {
					time.Sleep(time.Millisecond)
					continue
				}
				if _, err := sc.ScanDelta(ctx, u); err != nil && ctx.Err() == nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 10; i++ {
		market.trade(t, rng, 3)
		if _, err := w.Refresh(ctx); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond) // let consumers drain the last update
	w.Close()
	cancel()
	wg.Wait()
}
