// Onchain demonstrates atomic execution with flash-loan semantics on the
// chain simulator: a computed plan executes in one transaction; a stale
// or wrong-direction plan reverts without touching state — exactly the
// protection the paper recommends ("implement these three exchanges in
// the same transaction by applying flash loan").
package main

import (
	"context"
	"fmt"
	"log"
	"math/big"

	"arbloop"
	"arbloop/internal/chain"
)

const scale = 1_000_000 // integer base units per token

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The Section V pools, mirrored onto the chain state.
	state := chain.NewState(1_693_526_400)
	pools := []struct {
		id, t0, t1 string
		r0, r1     int64
	}{
		{"p1", "X", "Y", 100, 200},
		{"p2", "Y", "Z", 300, 200},
		{"p3", "Z", "X", 200, 400},
	}
	for _, p := range pools {
		if err := state.AddPool(p.id, p.t0, p.t1, big.NewInt(p.r0*scale), big.NewInt(p.r1*scale), 30); err != nil {
			return err
		}
	}

	// Compute the optimal plan off-chain with the analytic library.
	p1, err := arbloop.NewPool("p1", "X", "Y", 100, 200, arbloop.DefaultFee)
	if err != nil {
		return err
	}
	p2, err := arbloop.NewPool("p2", "Y", "Z", 300, 200, arbloop.DefaultFee)
	if err != nil {
		return err
	}
	p3, err := arbloop.NewPool("p3", "Z", "X", 200, 400, arbloop.DefaultFee)
	if err != nil {
		return err
	}
	loop, err := arbloop.NewLoop([]arbloop.Hop{
		{Pool: p1, TokenIn: "X"}, {Pool: p2, TokenIn: "Y"}, {Pool: p3, TokenIn: "Z"},
	})
	if err != nil {
		return err
	}
	prices := arbloop.PriceMap{"X": 2, "Y": 10.2, "Z": 20}
	mm, err := arbloop.MaxMaxStrategy{}.Optimize(context.Background(), loop, prices)
	if err != nil {
		return err
	}
	fmt.Printf("plan: borrow %.2f %s, route %s, expected profit $%.2f\n",
		mm.Input, mm.StartToken, mm.Loop, mm.Monetized)

	// Execute atomically: borrow → swap → swap → swap → repay.
	rot := mm.Loop
	steps := make([]chain.SwapStep, rot.Len())
	for i := range steps {
		steps[i] = chain.SwapStep{PairID: rot.Hop(i).Pool.ID, TokenIn: rot.Tokens()[i]}
	}
	rcpt := state.ExecuteTx(chain.Tx{
		Borrow: mm.StartToken,
		Amount: big.NewInt(int64(mm.Input * scale)),
		Steps:  steps,
	})
	if !rcpt.OK {
		return fmt.Errorf("unexpected revert: %w", rcpt.Err)
	}
	for tok, amt := range rcpt.Profit {
		f, _ := new(big.Float).Quo(new(big.Float).SetInt(amt), big.NewFloat(scale)).Float64()
		fmt.Printf("committed: +%.4f %s (≈ $%.2f)\n", f, tok, f*prices[tok])
	}

	// Running the same plan again is less profitable (the pools moved)…
	second := state.ExecuteTx(chain.Tx{
		Borrow: mm.StartToken,
		Amount: big.NewInt(int64(mm.Input * scale)),
		Steps:  steps,
	})
	if second.OK {
		f, _ := new(big.Float).Quo(new(big.Float).SetInt(second.Profit[mm.StartToken]), big.NewFloat(scale)).Float64()
		fmt.Printf("re-run after pools moved: only +%.4f %s\n", f, mm.StartToken)
	} else {
		fmt.Printf("re-run after pools moved: reverted (%v)\n", second.Err)
	}

	// …and the reverse direction reverts outright: the flash loan cannot
	// be repaid, so state is untouched.
	reverse := state.ExecuteTx(chain.Tx{
		Borrow: "X",
		Amount: big.NewInt(10 * scale),
		Steps: []chain.SwapStep{
			{PairID: "p3", TokenIn: "X"},
			{PairID: "p2", TokenIn: "Z"},
			{PairID: "p1", TokenIn: "Y"},
		},
	})
	fmt.Printf("wrong-direction plan: ok=%v err=%v (state rolled back)\n", reverse.OK, reverse.Err)
	fmt.Printf("chain height %d, timestamp %d\n", state.Height(), state.Timestamp())
	return nil
}
