// Empirical reproduces the paper's §VI pipeline on the calibrated
// synthetic market: build the token graph, enumerate length-3 loops,
// filter the arbitrage loops, run all four strategies on each, and
// summarize the scatter relations of Figs. 5–7 as terminal output.
package main

import (
	"fmt"
	"log"
	"os"

	"arbloop/internal/experiments"
	"arbloop/internal/plot"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	res, err := experiments.RunPipeline(experiments.PipelineConfig{LoopLen: 3})
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d tokens, %d pools (paper: 51, 208)\n", res.Graph.NumNodes(), res.Graph.NumEdges())
	fmt.Printf("cycles of length 3: %d; arbitrage loops: %d (paper: 123)\n\n",
		res.CyclesExamined, len(res.Loops))

	// Fig. 5 relation: MaxMax dominates every traditional start.
	fig5 := experiments.Fig5(res)
	var under, on int
	for _, p := range fig5 {
		if p.Y < p.X-1e-6*(1+p.X) {
			under++
		} else {
			on++
		}
	}
	fmt.Printf("Fig 5: %d traditional points — %d strictly under the 45° line, %d on it (0 above)\n",
		len(fig5), under, on)

	// Fig. 6 relation: MaxPrice is unreliable.
	fig6 := experiments.Fig6(res)
	var mpMiss int
	var worst float64
	for _, p := range fig6 {
		if p.Y < p.X*0.99 {
			mpMiss++
			if gap := p.X - p.Y; gap > worst {
				worst = gap
			}
		}
	}
	fmt.Printf("Fig 6: MaxPrice misses the best start on %d/%d loops (worst shortfall $%.2f)\n",
		mpMiss, len(fig6), worst)

	// Fig. 7 relation: Convex ≈ MaxMax.
	fig7 := experiments.Fig7(res)
	var maxRel float64
	for _, p := range fig7 {
		if p.X > 1e-9 {
			if rel := (p.X - p.Y) / p.X; rel > maxRel {
				maxRel = rel
			}
		}
	}
	fmt.Printf("Fig 7: Convex vs MaxMax relative gap ≤ %.3g%% across all loops (paper: points on the line)\n\n",
		maxRel*100)

	// ASCII preview of the Fig. 5 scatter.
	var c plot.Chart
	c.Title = "Traditional (y) vs MaxMax (x) monetized profit, one point per (loop, start)"
	c.XLabel, c.YLabel = "MaxMax ($)", "Traditional ($)"
	xs := make([]float64, len(fig5))
	ys := make([]float64, len(fig5))
	var lim float64
	for i, p := range fig5 {
		xs[i], ys[i] = p.X, p.Y
		if p.X > lim {
			lim = p.X
		}
	}
	if err := c.Add("loops", '+', xs, ys); err != nil {
		return err
	}
	if err := c.Add("45°", '.', []float64{0, lim}, []float64{0, lim}); err != nil {
		return err
	}
	if err := c.Render(os.Stdout); err != nil {
		return err
	}

	// Top-5 loop table.
	tbl := plot.Table{
		Title:   "Most profitable loops",
		Columns: []string{"loop", "MaxMax ($)", "Convex ($)", "MaxPrice ($)"},
	}
	top := res.Loops
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j].MaxMax.Monetized > top[i].MaxMax.Monetized {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	n := 5
	if len(top) < n {
		n = len(top)
	}
	for _, la := range top[:n] {
		tbl.AddRow(la.Loop.String(),
			fmt.Sprintf("%.2f", la.MaxMax.Monetized),
			fmt.Sprintf("%.2f", la.Convex.Monetized),
			fmt.Sprintf("%.2f", la.MaxPrice.Monetized))
	}
	return tbl.Render(os.Stdout)
}
