// Liveoracle shows the networked price path a production arbitrage bot
// would use: it starts the CoinGecko-style price API simulator on a local
// port, fetches prices through the TTL-caching HTTP client, and monetizes
// a detected arbitrage loop with the fetched prices.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"arbloop"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Generate the calibrated market and detect loops.
	snap, err := arbloop.GenerateMarket(arbloop.DefaultGeneratorConfig())
	if err != nil {
		return err
	}
	filtered := snap.FilterPools(30_000, 100)
	g, err := filtered.BuildGraph()
	if err != nil {
		return err
	}
	cs, err := arbloop.EnumerateCycles(g, 3, 3, 0)
	if err != nil {
		return err
	}
	loops, err := arbloop.ArbitrageLoops(g, cs)
	if err != nil {
		return err
	}
	fmt.Printf("detected %d arbitrage loops\n", len(loops))

	// Serve the snapshot's CEX prices over HTTP on an ephemeral port.
	oracle := arbloop.NewStaticOracle(filtered.PricesUSD)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           arbloop.NewPriceServer(oracle),
		ReadHeaderTimeout: 5 * time.Second,
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	}()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("price API serving on %s\n", baseURL)

	// Fetch prices through the caching client and optimize each loop.
	client := arbloop.NewPriceClient(baseURL, arbloop.PriceClientOptions{TTL: 30 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	bestProfit := -1.0
	var bestLoop *arbloop.Loop
	for _, d := range loops {
		loop, err := arbloop.LoopFromDirected(g, d)
		if err != nil {
			return err
		}
		fetched, err := client.Prices(ctx, loop.Tokens())
		if err != nil {
			return fmt.Errorf("fetch prices: %w", err)
		}
		mm, err := arbloop.MaxMax(loop, arbloop.PriceMap(fetched))
		if err != nil {
			return err
		}
		if mm.Monetized > bestProfit {
			bestProfit, bestLoop = mm.Monetized, loop
		}
	}
	fmt.Printf("best loop via HTTP-fetched prices: %s at $%.2f\n", bestLoop, bestProfit)

	// Second pass hits the cache: no additional upstream requests.
	start := time.Now()
	for _, d := range loops[:10] {
		loop, err := arbloop.LoopFromDirected(g, d)
		if err != nil {
			return err
		}
		if _, err := client.Prices(ctx, loop.Tokens()); err != nil {
			return err
		}
	}
	fmt.Printf("10 cached re-fetches took %v (served from TTL cache)\n", time.Since(start).Round(time.Microsecond))
	return nil
}
