// Liveoracle shows the networked price path a production arbitrage bot
// would use: it starts the CoinGecko-style price API simulator on a local
// port, then runs a whole-market Scanner whose PriceSource is the
// TTL-caching HTTP client — every monetization price arrives over the
// wire, fetched once per scan in a single batched call.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"arbloop"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Generate the calibrated market.
	snap, err := arbloop.GenerateMarket(arbloop.DefaultGeneratorConfig())
	if err != nil {
		return err
	}
	filtered := snap.FilterPools(30_000, 100)

	// Serve the snapshot's CEX prices over HTTP on an ephemeral port.
	oracle := arbloop.NewStaticOracle(filtered.PricesUSD)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           arbloop.NewPriceServer(oracle),
		ReadHeaderTimeout: 5 * time.Second,
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		<-done
	}()
	baseURL := "http://" + ln.Addr().String()
	fmt.Printf("price API serving on %s\n", baseURL)

	// The TTL-caching HTTP client is a PriceSource, so it plugs straight
	// into the Scanner: pools come from the snapshot, prices over HTTP.
	client := arbloop.NewPriceClient(baseURL, arbloop.PriceClientOptions{TTL: 30 * time.Second})
	sc, err := arbloop.NewScanner(arbloop.FromSnapshot(filtered), client,
		arbloop.WithParallelism(4),
		arbloop.WithTopK(1),
	)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	report, err := sc.Scan(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("detected %d arbitrage loops\n", report.LoopsDetected)
	if len(report.Results) == 0 {
		return fmt.Errorf("no profitable loops in the generated market")
	}
	best := report.Results[0]
	fmt.Printf("best loop via HTTP-fetched prices: %s at $%.2f\n", best.Loop, best.Result.Monetized)

	// A second scan hits the client's TTL cache: no upstream requests.
	start := time.Now()
	if _, err := sc.Scan(ctx); err != nil {
		return err
	}
	fmt.Printf("cached re-scan took %v (prices served from TTL cache)\n", time.Since(start).Round(time.Microsecond))
	return nil
}
