// Botdemo runs the block-driven arbitrage engine against the calibrated
// synthetic market in two regimes:
//
//  1. a quiet market — the bot consumes the initial mispricings and
//     per-block profit decays to zero (no-arbitrage convergence);
//  2. a live market — random retail flow keeps re-mispricing pools and
//     the bot's extraction reaches a steady state.
//
// Every execution is an atomic flash-loan transaction: stale plans revert
// instead of losing money.
package main

import (
	"context"
	"fmt"
	"log"
	"math/big"
	"math/rand"

	"arbloop"
	"arbloop/internal/bot"
	"arbloop/internal/cex"
	"arbloop/internal/chain"
	"arbloop/internal/source"
)

const scale = 1_000_000

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func buildChain() (*chain.State, map[string]float64, error) {
	snap, err := arbloop.GenerateMarket(arbloop.DefaultGeneratorConfig())
	if err != nil {
		return nil, nil, err
	}
	filtered := snap.FilterPools(30_000, 100)
	state := chain.NewState(1_693_526_400)
	if err := source.MirrorToChain(state, filtered, scale); err != nil {
		return nil, nil, err
	}
	return state, filtered.PricesUSD, nil
}

func run() error {
	ctx := context.Background()

	// Regime 1: quiet market.
	state, prices, err := buildChain()
	if err != nil {
		return err
	}
	engine, err := bot.New(state, cex.NewStatic(prices), bot.Config{
		Strategy:              arbloop.MaxMaxStrategy{},
		Parallelism:           4,
		MaxExecutionsPerBlock: 3,
		MinProfitUSD:          0.05,
	})
	if err != nil {
		return err
	}
	fmt.Println("regime 1: quiet market (profit decays to zero)")
	for i := 0; i < 8; i++ {
		report, err := engine.Step(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("  block %2d: %3d loops, realized $%8.2f\n",
			report.Height, report.LoopsDetected, report.TotalRealizedUSD())
	}
	st := engine.Stats()
	fmt.Printf("  totals: %d executions, %d skipped/reverted, $%.2f realized\n\n",
		st.Executed, st.Reverted, st.RealizedUSD)

	// Regime 2: live market with retail flow.
	state2, prices2, err := buildChain()
	if err != nil {
		return err
	}
	engine2, err := bot.New(state2, cex.NewStatic(prices2), bot.Config{
		MaxExecutionsPerBlock: 3,
		MinProfitUSD:          0.05,
	})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(7))
	ids := state2.PoolIDs()
	fmt.Println("regime 2: live market (retail flow keeps re-mispricing pools)")
	for i := 0; i < 8; i++ {
		// 12 random retail swaps of 1% of the input reserve per block.
		for j := 0; j < 12; j++ {
			id := ids[rng.Intn(len(ids))]
			t0, t1, err := state2.PoolTokens(id)
			if err != nil {
				return err
			}
			tokenIn := t0
			if rng.Intn(2) == 1 {
				tokenIn = t1
			}
			r0, r1, err := state2.Reserves(id)
			if err != nil {
				return err
			}
			rin := r0
			if tokenIn == t1 {
				rin = r1
			}
			amt := new(big.Int).Quo(rin, big.NewInt(100))
			if amt.Sign() <= 0 {
				continue
			}
			if _, err := state2.Swap(id, tokenIn, amt); err != nil {
				return err
			}
		}
		report, err := engine2.Step(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("  block %2d: %3d loops, realized $%8.2f\n",
			report.Height, report.LoopsDetected, report.TotalRealizedUSD())
	}
	st2 := engine2.Stats()
	fmt.Printf("  totals: %d executions, %d skipped/reverted, $%.2f realized\n",
		st2.Executed, st2.Reverted, st2.RealizedUSD)
	return nil
}
