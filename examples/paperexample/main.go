// Paperexample reproduces Section V of the paper end to end: the
// per-start table (T1), the MaxPrice failure at P_x ≈ 15$, and the
// Fig. 2/3 sweeps, printing paper-vs-measured values side by side.
package main

import (
	"fmt"
	"log"
	"os"

	"arbloop/internal/experiments"
	"arbloop/internal/plot"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// T1: the worked example.
	t1, err := experiments.TableT1()
	if err != nil {
		return err
	}
	tbl := plot.Table{
		Title:   "Section V worked example — paper vs measured",
		Columns: []string{"quantity", "paper", "measured"},
	}
	paper := map[string][3]float64{
		"X": {27.0, 16.8, 33.7},
		"Y": {31.5, 19.7, 201.1},
		"Z": {16.4, 10.3, 205.6},
	}
	for _, s := range t1.Starts {
		p := paper[s.Start]
		tbl.AddRow(fmt.Sprintf("input from %s", s.Start), fmt.Sprintf("%.1f", p[0]), fmt.Sprintf("%.2f", s.Input))
		tbl.AddRow(fmt.Sprintf("profit (%s)", s.Start), fmt.Sprintf("%.1f", p[1]), fmt.Sprintf("%.2f", s.Profit))
		tbl.AddRow(fmt.Sprintf("monetized from %s ($)", s.Start), fmt.Sprintf("%.1f", p[2]), fmt.Sprintf("%.2f", s.Monetized))
	}
	tbl.AddRow("MaxMax ($)", "205.6", fmt.Sprintf("%.2f (start %s)", t1.MaxMaxMonetized, t1.MaxMaxStart))
	tbl.AddRow("Convex ($)", "206.1", fmt.Sprintf("%.2f", t1.ConvexMonetized))
	tbl.AddRow("Convex net Y", "5.0", fmt.Sprintf("%.2f", t1.ConvexNet["Y"]))
	tbl.AddRow("Convex net Z", "7.7", fmt.Sprintf("%.2f", t1.ConvexNet["Z"]))
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Printf("\nConvex trade plan (paper: 31.3 X→47.6 Y, 42.6 Y→24.8 Z, 17.1 Z→31.3 X):\n")
	labels := []string{"X→Y", "Y→Z", "Z→X"}
	for i, lbl := range labels {
		fmt.Printf("  %s: in %.2f out %.2f\n", lbl, t1.ConvexInputs[i], t1.ConvexOutputs[i])
	}

	// The Fig. 2 sweep and the MaxPrice failure the paper highlights: at
	// P_x ≈ 15$ the X start beats the Z start even though P_z = 20$ is
	// the highest CEX price.
	rows, err := experiments.PxSweep(0.2)
	if err != nil {
		return err
	}
	fmt.Printf("\nFig. 2/3 sweep (%d price points):\n", len(rows))
	for _, r := range rows {
		if r.Px == 15.0 {
			fmt.Printf("  at Px=15$: start-X profit $%.1f vs MaxPrice (Z) $%.1f → MaxPrice unreliable\n",
				r.StartX, r.MaxPrice)
		}
	}
	var worstGap, worstPx float64
	for _, r := range rows {
		if gap := r.MaxMax - r.MaxPrice; gap > worstGap {
			worstGap, worstPx = gap, r.Px
		}
	}
	fmt.Printf("  largest MaxPrice shortfall: $%.1f at Px=%.1f$\n", worstGap, worstPx)

	var convexWins int
	for _, r := range rows {
		if r.Convex > r.MaxMax+1e-6 {
			convexWins++
		}
	}
	fmt.Printf("  Convex strictly above MaxMax at %d/%d sweep points (equal elsewhere)\n",
		convexWins, len(rows))
	return nil
}
