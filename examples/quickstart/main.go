// Quickstart: build the paper's three-pool arbitrage loop, run all four
// strategies, and finish with a whole-market Scanner pass — the
// five-minute tour of the public API.
package main

import (
	"context"
	"fmt"
	"log"

	"arbloop"
)

func main() {
	// The Section V example: three CPMM pools forming the loop X→Y→Z→X.
	p1, err := arbloop.NewPool("p1", "X", "Y", 100, 200, arbloop.DefaultFee)
	if err != nil {
		log.Fatal(err)
	}
	p2, err := arbloop.NewPool("p2", "Y", "Z", 300, 200, arbloop.DefaultFee)
	if err != nil {
		log.Fatal(err)
	}
	p3, err := arbloop.NewPool("p3", "Z", "X", 200, 400, arbloop.DefaultFee)
	if err != nil {
		log.Fatal(err)
	}
	loop, err := arbloop.NewLoop([]arbloop.Hop{
		{Pool: p1, TokenIn: "X"},
		{Pool: p2, TokenIn: "Y"},
		{Pool: p3, TokenIn: "Z"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Is it an arbitrage loop? (Π fee-adjusted spot prices > 1.)
	prod, err := loop.PriceProduct()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loop %s: price product %.4f (arbitrage: %v)\n\n", loop, prod, prod > 1)

	// CEX prices monetize the profit.
	prices := arbloop.PriceMap{"X": 2, "Y": 10.2, "Z": 20}

	// Traditional starts, one per token.
	all, err := arbloop.TraditionalAll(loop, prices)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range all {
		fmt.Printf("Traditional(%s): input %7.2f → profit %6.2f %-2s = $%7.2f\n",
			r.StartToken, r.Input, r.NetTokens[r.StartToken], r.StartToken, r.Monetized)
	}

	// MaxPrice and MaxMax heuristics.
	mp, err := arbloop.MaxPrice(loop, prices)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MaxPrice:        starts from %s (highest CEX price) = $%.2f\n", mp.StartToken, mp.Monetized)
	mm, err := arbloop.MaxMax(loop, prices)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MaxMax:          best start %s = $%.2f\n", mm.StartToken, mm.Monetized)

	// The convex relaxation (paper problem 8) can keep profit in several
	// tokens at once and is provably ≥ MaxMax.
	cv, err := arbloop.Convex(loop, prices, arbloop.ConvexOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Convex:          $%.2f, net tokens: X=%.2f Y=%.2f Z=%.2f\n",
		cv.Monetized, cv.NetTokens["X"], cv.NetTokens["Y"], cv.NetTokens["Z"])

	// Whole-market scan: the same three pools behind the source
	// interfaces, detection plus parallel per-loop optimization in one
	// call. On a real market this fans hundreds of loops out over a
	// worker pool; here it finds our single loop.
	sc, err := arbloop.NewScanner(
		arbloop.StaticPools{p1, p2, p3},
		arbloop.NewStaticOracle(prices),
		arbloop.WithStrategy(arbloop.MaxMaxStrategy{}),
		arbloop.WithParallelism(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	report, err := sc.Scan(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nScanner: %d loop(s) detected among %d pools\n", report.LoopsDetected, report.Pools)
	for _, r := range report.Results {
		fmt.Printf("  %s → $%.2f via %s from %s\n",
			r.Loop, r.Result.Monetized, r.Result.Strategy, r.Result.StartToken)
	}
}
