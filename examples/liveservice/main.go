// Example liveservice wires the full live opportunity stack in-process —
// chain simulator → block hook → versioned pool feed → topology-cached
// scanner → HTTP/SSE server — then plays HTTP client against itself:
// fetches the ranked report, reads a few per-block SSE events, and checks
// the health probe. This is `arbloop serve` in miniature, runnable
// without opening a port you have to remember to curl.
package main

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"math/big"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"arbloop"
	"arbloop/internal/chain"
	"arbloop/internal/server"
	"arbloop/internal/source"
)

const scale = 1_000_000

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A market on the chain simulator, so reserves move per block.
	snap, err := arbloop.GenerateMarket(arbloop.DefaultGeneratorConfig())
	if err != nil {
		return err
	}
	filtered := snap.FilterPools(30_000, 100)
	state := chain.NewState(time.Now().Unix())
	if err := source.MirrorToChain(state, filtered, scale); err != nil {
		return err
	}

	// 2. Feed + scanner: block hook → versioned updates → cached scans.
	src := arbloop.FromChain(state, scale)
	sc, err := arbloop.NewScanner(src, arbloop.NewStaticOracle(filtered.PricesUSD),
		arbloop.WithTopK(5))
	if err != nil {
		return err
	}
	watcher := arbloop.NewWatcher(src, arbloop.WithHeightProbe(state.Height))
	state.OnBlock(func(int64) { watcher.Notify() })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = watcher.Run(ctx, 0) }()

	// 3. Server: every versioned scan is published into the atomic store
	// and fanned out to SSE subscribers.
	srv := server.New()
	go func() {
		for vr := range sc.Watch(ctx, watcher) {
			if vr.Err != nil {
				continue
			}
			_ = srv.Publish(server.Encode(vr.Report, vr.Version, vr.Height), vr.Elapsed)
		}
	}()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// 4. Drive three blocks with a retail swap in between, so the stream
	// has something to say.
	watcher.Notify() // prime the first report
	go func() {
		ids := state.PoolIDs()
		for i := 0; ; i++ {
			time.Sleep(300 * time.Millisecond)
			if len(ids) > 0 {
				id := ids[i%len(ids)]
				if t0, _, err := state.PoolTokens(id); err == nil {
					if r0, _, err := state.Reserves(id); err == nil {
						amt := new(big.Int).Div(r0, big.NewInt(500))
						_, _ = state.Swap(id, t0, amt)
					}
				}
			}
			state.Block(nil)
		}
	}()

	// 5. Consume like a client: report, stream, health.
	if err := waitForReport(ts.URL); err != nil {
		return err
	}
	resp, err := http.Get(ts.URL + "/v1/report")
	if err != nil {
		return err
	}
	body := make([]byte, 200)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	fmt.Printf("GET /v1/report → %s\n%s…\n\n", resp.Status, body[:n])

	fmt.Println("GET /v1/stream →")
	if err := streamEvents(ctx, ts.URL, 3); err != nil {
		return err
	}

	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		return err
	}
	n, _ = resp.Body.Read(body)
	resp.Body.Close()
	fmt.Printf("\nGET /v1/healthz → %s\n%s", resp.Status, body[:n])
	return nil
}

// waitForReport polls until the first scan has been published.
func waitForReport(base string) error {
	for i := 0; i < 100; i++ {
		resp, err := http.Get(base + "/v1/report")
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("no report published in time")
}

// streamEvents reads n SSE `report` events and prints one line per block.
func streamEvents(ctx context.Context, base string, n int) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/stream", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	seen := 0
	for scanner.Scan() && seen < n {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		seen++
		payload := strings.TrimPrefix(line, "data: ")
		if len(payload) > 120 {
			payload = payload[:120] + "…"
		}
		fmt.Printf("  event %d: %s\n", seen, payload)
	}
	return scanner.Err()
}
