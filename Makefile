# arbloop — build/test/vet/bench entry points.

GO ?= go

.PHONY: all build test race vet lint bench bench-go bench-convex bench-delta bench-shard bench-server bench-telemetry bench-faults chaos fuzz clean

all: build vet lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Repo-native static analysis: arblint encodes the invariants this
# codebase has already paid to learn (hot-path alloc budget, key
# determinism, padded-copy, last-field, send-under-lock). Nonzero exit
# on any finding; suppressions require a reasoned //arblint:ignore.
lint:
	$(GO) run ./cmd/arblint ./...

# The scanner's concurrency contract is tested under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Regenerate BENCH_scan.json (loops/sec at parallelism 1 vs GOMAXPROCS).
bench:
	BENCH_JSON=1 $(GO) test -run TestWriteScanBenchJSON -count=1 -v .

# Standard Go benchmarks for the scan hot path.
bench-go:
	$(GO) test -bench 'BenchmarkScan' -benchmem -run '^$$' .

# Full-vs-delta per-block scan throughput (~10% of pools trading between
# scans). Quick enough for CI.
bench-delta:
	$(GO) test -bench 'BenchmarkScan(FullWarm|Delta10pct)' -benchmem -run '^$$' .

# Sharded delta path smoke: tiny run counts, runs on every PR so the
# sharded engine compiles and stays delta-engaged.
bench-shard:
	$(GO) test -bench 'BenchmarkScanShardedDelta' -benchtime 20x -benchmem -run '^$$' .

# Report-serving smoke: the distribution tier's cached read paths
# (plain / gzip / 304 / ?top=N) plus the per-block frame build, at the
# handler layer. Tiny run counts keep it CI-cheap; its job is to prove
# the encode-once frame cache stays engaged on every read.
bench-server:
	$(GO) test -bench 'BenchmarkServer' -benchtime 100x -benchmem -run '^$$' ./internal/server

# Telemetry guard + overhead: the instrumented steady-state delta scan
# must hold the 7-alloc budget, and full instrumentation must cost < 2%
# of scan time (plus per-primitive ns/op costs for the record).
bench-telemetry:
	BENCH_JSON=1 $(GO) test -run 'TestTelemetry(ScanAllocs|Bench)' -count=1 -v .

# Convex solver smoke: structured O(n) fast path vs the generic dense
# barrier solver, cold and warm-started. Tiny run counts keep it
# CI-cheap; its job is to prove the fast path compiles and stays engaged.
bench-convex:
	$(GO) test -bench 'BenchmarkConvex(Generic|Structured|Warm)' -benchtime 20x -benchmem -run '^$$' .

# Fault-layer zero-overhead guard: with chaos injection disabled, the
# breaker closed, and panic containment armed, the steady-state delta
# scan must hold the same 7-alloc budget as the bare pipeline.
bench-faults:
	$(GO) test -run TestFaultLayerDisabledAllocs -count=1 -v .

# Chaos soak: the full serving pipeline under a seeded fault schedule
# (injected errors, stalls, latency, corrupt payloads, strategy panics),
# under the race detector, plus the oplog crash-recovery soak (seeded
# disk faults, hard truncation at arbitrary byte offsets, replay-prefix
# and reopen-append invariants). -short keeps it CI-sized.
chaos:
	$(GO) test -race -short -run TestChaosSoak -count=1 -v ./cmd/arbloop
	$(GO) test -race -short -run TestOplogCrashSoak -count=1 -v ./internal/oplog

# Short fuzz of the AMM swap invariants and the oplog record decoder
# (CI runs this on every PR).
fuzz:
	$(GO) test -fuzz=Fuzz -fuzztime=10s ./internal/amm
	$(GO) test -fuzz=FuzzDecodeRecord -fuzztime=10s ./internal/oplog

clean:
	$(GO) clean ./...
