# arbloop — build/test/vet/bench entry points.

GO ?= go

.PHONY: all build test race vet bench bench-go clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The scanner's concurrency contract is tested under the race detector.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Regenerate BENCH_scan.json (loops/sec at parallelism 1 vs GOMAXPROCS).
bench:
	BENCH_JSON=1 $(GO) test -run TestWriteScanBenchJSON -count=1 -v .

# Standard Go benchmarks for the scan hot path.
bench-go:
	$(GO) test -bench 'BenchmarkScan' -benchmem -run '^$$' .

clean:
	$(GO) clean ./...
